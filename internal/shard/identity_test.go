package shard_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/shard"
	"repro/internal/urlextract"
	"repro/internal/webviewlint"
)

// renderAllTables renders every static-study table and figure — including
// the lint and urlextract tables — which together are the byte-identical
// surface the merge invariant is asserted over.
func renderAllTables(t *testing.T, res *pipeline.Result) string {
	t.Helper()
	aggs := pipeline.Aggregate(res)
	var sb strings.Builder
	sb.WriteString(report.Table2(res.Funnel, 2500))
	sb.WriteString(report.Table3(aggs))
	sb.WriteString(report.TopSDKTable(aggs, false, 2500))
	sb.WriteString(report.TopSDKTable(aggs, true, 2500))
	sb.WriteString(report.Table7(aggs, 2500))
	sb.WriteString(report.Figure3(aggs))
	sb.WriteString(report.Figure4(aggs))
	sb.WriteString(report.LintTable(aggs))
	sb.WriteString(report.URLTable(res.Apps))
	return sb.String()
}

// sequentialRun is the single-process reference: the plain pipeline over
// the whole snapshot, lint and URL stages on.
func sequentialRun(t *testing.T, c *corpus.Corpus) *pipeline.Result {
	t.Helper()
	lint, err := webviewlint.New(webviewlint.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.New(newTestRepo(c), &testMeta{c: c}, pipeline.Config{
		MinDownloads: corpus.MinDownloads,
		UpdatedAfter: corpus.UpdateCutoff,
		Lint:         lint,
		URLs:         urlextract.New(urlextract.Config{}),
	})
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return res
}

// shardedRun drives the full plane in process: a coordinator on a real
// HTTP listener and nWorkers workers scanning shards partitions of the
// same corpus. Returns the merged result.
func shardedRun(t *testing.T, c *corpus.Corpus, shards, nWorkers int) *pipeline.Result {
	t.Helper()
	repo := newTestRepo(c)
	coord, srv := startCoordinator(t, shard.CoordinatorConfig{
		Spec: shard.RunSpec{
			Shards:       shards,
			MinDownloads: corpus.MinDownloads,
			UpdatedAfter: corpus.UpdateCutoff,
			Lint:         true,
			URLs:         true,
			LeaseTTL:     time.Minute,
		},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		w, err := shard.NewWorker(shard.WorkerConfig{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("worker-%d", i),
			Poll:        10 * time.Millisecond,
			Services:    inProcessServices(repo, &testMeta{c: c}),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	merged, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator wait: %v", err)
	}
	return merged
}

// TestShardedRunMatchesSequential is the tentpole invariant: the merged
// report from 1 and from 4 worker shards is identical to the sequential
// single-process report — funnel counts, every per-app row, and all
// rendered tables including lint and urlextract.
func TestShardedRunMatchesSequential(t *testing.T) {
	c := testCorpus(t)
	seq := sequentialRun(t, c)
	seqTables := renderAllTables(t, seq)

	for _, tc := range []struct{ shards, workers int }{
		{1, 1},
		{4, 2},
		{4, 4},
	} {
		t.Run(fmt.Sprintf("%dshards_%dworkers", tc.shards, tc.workers), func(t *testing.T) {
			merged := shardedRun(t, c, tc.shards, tc.workers)
			if merged.Funnel != seq.Funnel {
				t.Fatalf("funnel diverged:\n  sharded    %+v\n  sequential %+v", merged.Funnel, seq.Funnel)
			}
			if !reflect.DeepEqual(merged.Apps, seq.Apps) {
				t.Fatal("per-app results diverged from the sequential run")
			}
			if !reflect.DeepEqual(merged.Quarantined, seq.Quarantined) {
				t.Fatalf("quarantines diverged: %+v vs %+v", merged.Quarantined, seq.Quarantined)
			}
			if got := renderAllTables(t, merged); got != seqTables {
				t.Fatalf("rendered tables diverged from the sequential run:\n--- sharded ---\n%s\n--- sequential ---\n%s", got, seqTables)
			}
		})
	}
}
