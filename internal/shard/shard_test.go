// Unit tests for the shard control plane: partition determinism, lease
// lifecycle under an injected clock, result acceptance rules, and the
// merge fold. The plane-level identity and chaos invariants live in
// identity_test.go and chaos_test.go.
package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/playstore"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// --- shared in-process harness -----------------------------------------

// fakeClock is an injectable coordinator clock: chaos tests expire leases
// by advancing it rather than sleeping out a TTL.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testRepo serves APKs straight from corpus specs, counting downloads per
// package across every worker that shares it.
type testRepo struct {
	c  *corpus.Corpus
	mu sync.Mutex
	dl map[string]int
	// onDownload, when non-nil, observes each download (after counting);
	// the chaos test uses it to kill a worker mid-partition.
	onDownload func(pkg string, nth int)
}

func newTestRepo(c *corpus.Corpus) *testRepo {
	return &testRepo{c: c, dl: make(map[string]int)}
}

func (r *testRepo) List(ctx context.Context) ([]string, error) {
	out := make([]string, 0, len(r.c.Apps))
	for _, s := range r.c.Apps {
		out = append(out, s.Package)
	}
	return out, nil
}

func (r *testRepo) Download(ctx context.Context, pkg string) ([]byte, error) {
	r.mu.Lock()
	r.dl[pkg]++
	nth := r.dl[pkg]
	hook := r.onDownload
	r.mu.Unlock()
	if hook != nil {
		hook(pkg, nth)
	}
	spec := r.c.AppByPackage(pkg)
	if spec == nil {
		return nil, fmt.Errorf("shard test: unknown %s", pkg)
	}
	return corpus.BuildAPK(spec)
}

func (r *testRepo) setOnDownload(fn func(pkg string, nth int)) {
	r.mu.Lock()
	r.onDownload = fn
	r.mu.Unlock()
}

func (r *testRepo) downloads() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.dl))
	for k, v := range r.dl {
		out[k] = v
	}
	return out
}

// testMeta serves metadata straight from corpus specs.
type testMeta struct{ c *corpus.Corpus }

func (m *testMeta) Metadata(ctx context.Context, pkg string) (playstore.Metadata, error) {
	spec := m.c.AppByPackage(pkg)
	if spec == nil || !spec.OnPlayStore {
		return playstore.Metadata{}, fmt.Errorf("%w: %s", playstore.ErrNotFound, pkg)
	}
	return playstore.Metadata{
		Package: spec.Package, Title: spec.Title, Category: spec.PlayCategory,
		Downloads: spec.Downloads, LastUpdated: spec.LastUpdated,
	}, nil
}

func testCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 2500})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// startCoordinator mounts the control plane on an httptest server.
func startCoordinator(t *testing.T, cfg shard.CoordinatorConfig) (*shard.Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := shard.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return coord, srv
}

// inProcessServices injects an in-process repository/store pair into a
// worker, bypassing the androzoo/playstore HTTP clients.
func inProcessServices(repo pipeline.Repository, meta pipeline.MetadataSource) func(shard.RunSpec) (pipeline.Repository, pipeline.MetadataSource, error) {
	return func(shard.RunSpec) (pipeline.Repository, pipeline.MetadataSource, error) {
		return repo, meta, nil
	}
}

// --- partition function -------------------------------------------------

func TestPartitionOfIsDeterministicAndCovers(t *testing.T) {
	c := testCorpus(t)
	for _, shards := range []int{1, 2, 4, 8} {
		seen := make(map[int]int)
		for _, app := range c.Apps {
			p := shard.PartitionOf(app.Package, shards)
			if p < 0 || p >= shards {
				t.Fatalf("PartitionOf(%q, %d) = %d out of range", app.Package, shards, p)
			}
			if q := shard.PartitionOf(app.Package, shards); q != p {
				t.Fatalf("PartitionOf not deterministic for %q", app.Package)
			}
			seen[p]++
		}
		if shards > 1 && len(seen) != shards {
			t.Fatalf("%d shards: only %d partitions populated over %d packages", shards, len(seen), len(c.Apps))
		}
	}
}

func TestPartitionTagDistinguishesSpecs(t *testing.T) {
	tags := map[string]string{
		"0/4": shard.PartitionTag(0, 4),
		"1/4": shard.PartitionTag(1, 4),
		"0/8": shard.PartitionTag(0, 8),
	}
	seen := make(map[string]string)
	for name, tag := range tags {
		if prev, ok := seen[tag]; ok {
			t.Fatalf("tag collision: %s and %s both render %q", prev, name, tag)
		}
		seen[tag] = name
	}
	if shard.PartitionTag(0, 4) != shard.PartitionTag(0, 4) {
		t.Fatal("PartitionTag not deterministic")
	}
}

// --- merge ---------------------------------------------------------------

func TestMergeFoldsPartitions(t *testing.T) {
	a := &pipeline.Result{
		Funnel: pipeline.Funnel{Snapshot: 10, OnPlay: 6, Popular: 4, Filtered: 3, Broken: 1, Analyzed: 2},
		Apps: []pipeline.AppResult{
			{Package: "com.zeta"}, {Package: "com.alpha"},
		},
		Quarantined: []pipeline.Quarantine{{Package: "com.q", Stage: "download"}},
	}
	b := &pipeline.Result{
		Funnel: pipeline.Funnel{Snapshot: 7, OnPlay: 3, Popular: 2, Filtered: 2, Broken: 0, Analyzed: 2},
		Apps: []pipeline.AppResult{
			{Package: "com.mid"},
		},
		Quarantined: []pipeline.Quarantine{{Package: "com.q", Stage: "analyze"}},
	}
	m := shard.Merge([]*pipeline.Result{a, b, nil})
	if m.Funnel.Snapshot != 17 || m.Funnel.OnPlay != 9 || m.Funnel.Popular != 6 ||
		m.Funnel.Filtered != 5 || m.Funnel.Broken != 1 || m.Funnel.Analyzed != 4 {
		t.Fatalf("funnel not additive: %+v", m.Funnel)
	}
	order := []string{"com.alpha", "com.mid", "com.zeta"}
	for i, want := range order {
		if m.Apps[i].Package != want {
			t.Fatalf("apps not sorted: got %v at %d, want %v", m.Apps[i].Package, i, want)
		}
	}
	if m.Quarantined[0].Stage != "analyze" || m.Quarantined[1].Stage != "download" {
		t.Fatalf("quarantines not sorted by (package, stage): %+v", m.Quarantined)
	}
}

// --- lease lifecycle -----------------------------------------------------

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeGrant(t *testing.T, resp *http.Response) shard.LeaseGrant {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease: status %d", resp.StatusCode)
	}
	var g shard.LeaseGrant
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	clock := newFakeClock()
	hub := telemetry.New(telemetry.Options{})
	ttl := 30 * time.Second
	coord, srv := startCoordinator(t, shard.CoordinatorConfig{
		Spec:      shard.RunSpec{Shards: 2, LeaseTTL: ttl, ConfigKey: "cfg-v1"},
		Telemetry: hub,
		Now:       clock.Now,
	})
	lease := func(worker string) shard.LeaseGrant {
		return decodeGrant(t, postJSON(t, srv.URL+"/v1/lease", map[string]string{"worker": worker}))
	}

	// Grant both partitions, then a third request must wait.
	g0, g1 := lease("w1"), lease("w2")
	if g0.Partition != 0 || g1.Partition != 1 {
		t.Fatalf("grants: %+v %+v", g0, g1)
	}
	if g0.Tag != shard.PartitionTag(0, 2) {
		t.Fatalf("grant tag %q, want %q", g0.Tag, shard.PartitionTag(0, 2))
	}
	if g := lease("w3"); !g.Wait {
		t.Fatalf("exhausted plane should answer wait, got %+v", g)
	}

	// Renewal by the holder extends; by anyone else is Gone.
	resp := postJSON(t, srv.URL+"/v1/renew", map[string]any{"worker": "w1", "partition": 0})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("holder renew: status %d", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+"/v1/renew", map[string]any{"worker": "w9", "partition": 0})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("foreign renew: status %d, want 410", resp.StatusCode)
	}

	// Result under a wrong config fingerprint is a conflict.
	resp = postJSON(t, srv.URL+"/v1/result", map[string]any{
		"worker": "w1", "partition": 0, "configKey": "cfg-v2", "result": &pipeline.Result{},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched config: status %d, want 409", resp.StatusCode)
	}

	// Expire w2's lease by advancing past TTL (w1 renewed, so its clock
	// budget is fresher — but the advance kills both; re-grant them).
	clock.Advance(ttl + time.Second)
	g0, g1 = lease("w4"), lease("w4")
	if g0.Partition != 0 || g1.Partition != 1 {
		t.Fatalf("expired partitions not re-issued: %+v %+v", g0, g1)
	}

	// A stale result from the original holder is refused.
	resp = postJSON(t, srv.URL+"/v1/result", map[string]any{
		"worker": "w1", "partition": 0, "configKey": "cfg-v1", "result": &pipeline.Result{},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale result: status %d, want 410", resp.StatusCode)
	}

	// The live holder completes both partitions; the plane reports done.
	for p := 0; p < 2; p++ {
		resp = postJSON(t, srv.URL+"/v1/result", map[string]any{
			"worker": "w4", "partition": p, "configKey": "cfg-v1",
			"result": &pipeline.Result{Funnel: pipeline.Funnel{Snapshot: 1}},
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %d: status %d", p, resp.StatusCode)
		}
	}
	if g := lease("w5"); !g.Done {
		t.Fatalf("finished plane should answer done, got %+v", g)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	merged, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Funnel.Snapshot != 2 {
		t.Fatalf("merged snapshot = %d, want 2", merged.Funnel.Snapshot)
	}

	// Telemetry saw the lifecycle: grants, a renewal, expiries, rejects,
	// accepted and refused results.
	var prom bytes.Buffer
	if err := hub.Registry().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`shard_lease_total{event="grant"} 4`,
		`shard_lease_total{event="renew"} 1`,
		`shard_lease_total{event="expire"} 2`,
		`shard_lease_total{event="reject"} 1`,
		`shard_results_total{status="accepted"} 2`,
		`shard_results_total{status="stale"} 1`,
		`shard_results_total{status="mismatch"} 1`,
		`shard_partitions_inflight 0`,
	} {
		if !bytes.Contains(prom.Bytes(), []byte(want)) {
			t.Fatalf("telemetry missing %q in:\n%s", want, prom.String())
		}
	}
}

func TestCoordinatorRejectsZeroShards(t *testing.T) {
	if _, err := shard.NewCoordinator(shard.CoordinatorConfig{}); err == nil {
		t.Fatal("coordinator accepted 0 shards")
	}
}

func TestWorkerNeedsCoordinatorAndName(t *testing.T) {
	if _, err := shard.NewWorker(shard.WorkerConfig{Name: "w"}); err == nil {
		t.Fatal("worker accepted empty coordinator")
	}
	if _, err := shard.NewWorker(shard.WorkerConfig{Coordinator: "http://x"}); err == nil {
		t.Fatal("worker accepted empty name")
	}
}
