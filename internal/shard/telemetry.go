package shard

import "repro/internal/telemetry"

// Metric families exported by the coordinator control plane.
const (
	famLease    = "shard_lease_total" // labels: event=grant|renew|expire|reject
	famInflight = "shard_partitions_inflight"
	famResults  = "shard_results_total" // labels: status=accepted|stale|mismatch
	famMerge    = "shard_merge_seconds"
)

// coordMetrics resolves the coordinator's metric handles. As with the
// pipeline, a nil hub gets a private one so the control plane never
// branches on instrumentation.
type coordMetrics struct {
	grants, renewals, expiries, rejects        *telemetry.Counter
	inflight                                   *telemetry.Gauge
	accepted, stale, mismatch, snapshotRejects *telemetry.Counter
	mergeSeconds                               *telemetry.Histogram
}

func newCoordMetrics(hub *telemetry.Hub) *coordMetrics {
	if hub == nil {
		hub = telemetry.New(telemetry.Options{})
	}
	lease := func(event string) *telemetry.Counter {
		return hub.Counter(famLease, "work-lease lifecycle events by type", "event", event)
	}
	result := func(status string) *telemetry.Counter {
		return hub.Counter(famResults, "per-shard result submissions by outcome", "status", status)
	}
	return &coordMetrics{
		grants:   lease("grant"),
		renewals: lease("renew"),
		expiries: lease("expire"),
		rejects:  lease("reject"),
		inflight: hub.Gauge(famInflight, "partitions currently leased to a live worker"),
		accepted: result("accepted"),
		stale:    result("stale"),
		mismatch: result("mismatch"),
		// bad_snapshot counts accepted results whose attached telemetry
		// payload failed to parse (the report is still merged).
		snapshotRejects: result("bad_snapshot"),
		mergeSeconds:    hub.Histogram(famMerge, "wall time of the final result merge in seconds", nil),
	}
}
