package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// CoordinatorConfig parameterises the control plane.
type CoordinatorConfig struct {
	// Spec is the scan configuration served to joining workers.
	Spec RunSpec
	// Telemetry, when non-nil, receives the lease/merge metric families.
	Telemetry *telemetry.Hub
	// Now is the lease clock (nil = time.Now). Injectable so chaos tests
	// expire leases deterministically instead of sleeping.
	Now func() time.Time
}

// lease is one live partition grant.
type lease struct {
	worker  string
	expires time.Time
}

// Coordinator owns the partition ledger: which partitions are leased, to
// whom, until when, and which are complete. It is an HTTP control plane —
// workers join over the wire, so they can be separate OS processes — but
// all state lives here, in one place, guarded by one mutex; workers are
// stateless between leases.
type Coordinator struct {
	spec    RunSpec
	now     func() time.Time
	metrics *coordMetrics

	mu       sync.Mutex
	leases   map[int]*lease
	complete map[int]*pipeline.Result
	merged   *pipeline.Result
	mergeDur time.Duration
	done     chan struct{}
}

// NewCoordinator validates the spec and builds the ledger.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Spec.Shards < 1 {
		return nil, fmt.Errorf("shard: coordinator needs at least 1 shard, got %d", cfg.Spec.Shards)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Coordinator{
		spec:     cfg.Spec,
		now:      now,
		metrics:  newCoordMetrics(cfg.Telemetry),
		leases:   make(map[int]*lease),
		complete: make(map[int]*pipeline.Result),
		done:     make(chan struct{}),
	}, nil
}

// Handler returns the control-plane API:
//
//	GET  /v1/spec     the RunSpec
//	POST /v1/lease    {"worker":W} → a partition grant, wait, or done
//	POST /v1/renew    {"worker":W,"partition":P} → extend the lease
//	POST /v1/result   {"worker":W,"partition":P,"configKey":K,"result":R}
//	GET  /v1/status   progress counters
//
// Serve it behind serving.Listen (hardened timeouts) in production; tests
// may mount it on an httptest server.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/spec", c.handleSpec)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/result", c.handleResult)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	return mux
}

// sweep expires overdue leases. Called under mu before every ledger
// decision — lease issue, renewal, result acceptance, status — so expiry
// is driven by control-plane traffic and the injected clock, never by a
// background timer a test cannot steer.
func (c *Coordinator) sweep() {
	now := c.now()
	for p, l := range c.leases {
		if !l.expires.After(now) {
			delete(c.leases, p)
			c.metrics.expiries.Inc()
			c.metrics.inflight.Add(-1)
		}
	}
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.spec)
}

// LeaseGrant is the coordinator's answer to a lease request. Exactly one
// of the three shapes is populated: a grant (Partition ≥ 0), Wait (every
// pending partition is leased to a live worker — retry shortly), or Done
// (all partitions complete — the worker can exit).
type LeaseGrant struct {
	Partition int           `json:"partition"`
	Tag       string        `json:"tag,omitempty"`
	TTL       time.Duration `json:"ttl,omitempty"`
	Wait      bool          `json:"wait,omitempty"`
	Done      bool          `json:"done,omitempty"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()

	if len(c.complete) == c.spec.Shards {
		writeJSON(w, http.StatusOK, LeaseGrant{Partition: -1, Done: true})
		return
	}
	for p := 0; p < c.spec.Shards; p++ {
		if _, ok := c.complete[p]; ok {
			continue
		}
		if _, ok := c.leases[p]; ok {
			continue
		}
		c.leases[p] = &lease{worker: req.Worker, expires: c.now().Add(c.spec.TTL())}
		c.metrics.grants.Inc()
		c.metrics.inflight.Add(1)
		writeJSON(w, http.StatusOK, LeaseGrant{
			Partition: p,
			Tag:       PartitionTag(p, c.spec.Shards),
			TTL:       c.spec.TTL(),
		})
		return
	}
	// Nothing free, nothing done-for-good: the worker should poll again.
	writeJSON(w, http.StatusOK, LeaseGrant{Partition: -1, Wait: true})
}

type renewRequest struct {
	Worker    string `json:"worker"`
	Partition int    `json:"partition"`
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()

	l, ok := c.leases[req.Partition]
	if !ok || l.worker != req.Worker {
		// The lease expired (and may already be re-issued elsewhere): the
		// worker must abandon the partition.
		c.metrics.rejects.Inc()
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	l.expires = c.now().Add(c.spec.TTL())
	c.metrics.renewals.Inc()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

type resultRequest struct {
	Worker    string           `json:"worker"`
	Partition int              `json:"partition"`
	ConfigKey string           `json:"configKey"`
	Result    *pipeline.Result `json:"result"`
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Result == nil {
		http.Error(w, "missing result", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()

	if c.spec.ConfigKey != "" && req.ConfigKey != c.spec.ConfigKey {
		// The worker ran a different analysis configuration; merging its
		// partition would silently corrupt the report.
		c.metrics.mismatch.Inc()
		http.Error(w, "analysis configuration mismatch", http.StatusConflict)
		return
	}
	l, ok := c.leases[req.Partition]
	if !ok || l.worker != req.Worker {
		// Stale submission: the lease expired and the partition is (or will
		// be) re-scanned by a peer. Exactly-once on the merge side means
		// refusing this copy — the journal makes the re-scan cheap.
		c.metrics.stale.Inc()
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	delete(c.leases, req.Partition)
	c.metrics.inflight.Add(-1)
	c.complete[req.Partition] = req.Result
	c.metrics.accepted.Inc()

	if len(c.complete) == c.spec.Shards {
		start := time.Now()
		parts := make([]*pipeline.Result, c.spec.Shards)
		for p, res := range c.complete {
			parts[p] = res
		}
		c.merged = Merge(parts)
		c.mergeDur = time.Since(start)
		c.metrics.mergeSeconds.Observe(c.mergeDur.Seconds())
		close(c.done)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// Status is the coordinator's progress snapshot.
type Status struct {
	Shards    int  `json:"shards"`
	Completed int  `json:"completed"`
	Inflight  int  `json:"inflight"`
	Done      bool `json:"done"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.sweep()
	st := Status{
		Shards:    c.spec.Shards,
		Completed: len(c.complete),
		Inflight:  len(c.leases),
		Done:      len(c.complete) == c.spec.Shards,
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// Wait blocks until every partition is complete and returns the merged
// report, or the context error.
func (c *Coordinator) Wait(ctx context.Context) (*pipeline.Result, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merged, nil
}

// MergeLatency reports how long the final merge took (zero until done).
func (c *Coordinator) MergeLatency() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mergeDur
}

// maxBody bounds control-plane request bodies. Result payloads carry every
// analysed app of a partition, so the ceiling is generous; everything else
// is tiny.
const maxBody = 256 << 20

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "bad json", http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
