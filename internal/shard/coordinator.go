package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/telemetry/fleet"
)

// CoordinatorConfig parameterises the control plane.
type CoordinatorConfig struct {
	// Spec is the scan configuration served to joining workers.
	Spec RunSpec
	// Telemetry, when non-nil, receives the lease/merge metric families.
	Telemetry *telemetry.Hub
	// Now is the lease clock (nil = time.Now). Injectable so chaos tests
	// expire leases deterministically instead of sleeping.
	Now func() time.Time
}

// lease is one live partition grant.
type lease struct {
	worker  string
	expires time.Time
	granted time.Time
	renewed time.Time
	// span is the coordinator's per-partition span in the fleet trace,
	// opened at grant and ended at acceptance (or expiry). Nil when the
	// coordinator hub has tracing off.
	span *telemetry.Span
}

// Coordinator owns the partition ledger: which partitions are leased, to
// whom, until when, and which are complete. It is an HTTP control plane —
// workers join over the wire, so they can be separate OS processes — but
// all state lives here, in one place, guarded by one mutex; workers are
// stateless between leases.
type Coordinator struct {
	spec    RunSpec
	now     func() time.Time
	metrics *coordMetrics
	hub     *telemetry.Hub

	// fed federates worker snapshots and traces (nil unless the spec
	// enables Federation); traceID is the run's fleet trace id.
	fed     *fleet.Federator
	traceID string

	mu         sync.Mutex
	leases     map[int]*lease
	complete   map[int]*pipeline.Result
	merged     *pipeline.Result
	mergeDur   time.Duration
	firstGrant time.Time
	done       chan struct{}
}

// NewCoordinator validates the spec and builds the ledger.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Spec.Shards < 1 {
		return nil, fmt.Errorf("shard: coordinator needs at least 1 shard, got %d", cfg.Spec.Shards)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &Coordinator{
		spec:     cfg.Spec,
		now:      now,
		metrics:  newCoordMetrics(cfg.Telemetry),
		hub:      cfg.Telemetry,
		leases:   make(map[int]*lease),
		complete: make(map[int]*pipeline.Result),
		done:     make(chan struct{}),
	}
	if cfg.Spec.Federation {
		c.traceID = fleet.TraceID(cfg.Spec.Seed)
		c.fed = fleet.New(fleet.Config{Hub: cfg.Telemetry, Now: now, TraceID: c.traceID})
	}
	return c, nil
}

// Fleet returns the run's metrics/trace federator, nil when the spec does
// not enable Federation.
func (c *Coordinator) Fleet() *fleet.Federator { return c.fed }

// FleetTraceID returns the run's fleet trace id ("" without Federation).
func (c *Coordinator) FleetTraceID() string { return c.traceID }

// Handler returns the control-plane API:
//
//	GET  /v1/spec     the RunSpec
//	POST /v1/lease    {"worker":W} → a partition grant, wait, or done
//	POST /v1/renew    {"worker":W,"partition":P} → extend the lease
//	POST /v1/result   {"worker":W,"partition":P,"configKey":K,"result":R}
//	GET  /v1/status   progress counters
//
// With Federation enabled the fleet observability surface rides along:
//
//	POST /v1/snapshot       {"worker":W,"metricsProm":B} final registry flush
//	GET  /fleet/metrics     federated Prometheus text (shard-labeled series
//	                        plus shard="fleet" rollups; ?view=rollup for the
//	                        deterministic rollup alone)
//	GET  /fleet/metrics.json  the same exposition as JSON
//	GET  /fleet/status      live run status (JSON; ?format=text for human text)
//	GET  /fleet/trace       stitched fleet-wide per-APK trace as JSONL
//	                        (?view=control for the partition/run control spans)
//
// Serve it behind serving.Listen (hardened timeouts) in production; tests
// may mount it on an httptest server.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/spec", c.handleSpec)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/result", c.handleResult)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	if c.fed != nil {
		mux.HandleFunc("POST /v1/snapshot", c.handleSnapshot)
		mux.HandleFunc("GET /fleet/metrics", c.handleFleetMetrics)
		mux.HandleFunc("GET /fleet/metrics.json", c.handleFleetMetricsJSON)
		mux.HandleFunc("GET /fleet/status", c.handleFleetStatus)
		mux.HandleFunc("GET /fleet/trace", c.handleFleetTrace)
	}
	return mux
}

// sweep expires overdue leases. Called under mu before every ledger
// decision — lease issue, renewal, result acceptance, status — so expiry
// is driven by control-plane traffic and the injected clock, never by a
// background timer a test cannot steer.
func (c *Coordinator) sweep() {
	now := c.now()
	for p, l := range c.leases {
		if !l.expires.After(now) {
			delete(c.leases, p)
			c.metrics.expiries.Inc()
			c.metrics.inflight.Add(-1)
			l.span.SetAttr("outcome", "expired")
			l.span.End()
		}
	}
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.spec)
}

// LeaseGrant is the coordinator's answer to a lease request. Exactly one
// of the three shapes is populated: a grant (Partition ≥ 0), Wait (every
// pending partition is leased to a live worker — retry shortly), or Done
// (all partitions complete — the worker can exit).
//
// With Federation enabled a grant also carries the propagated trace
// context: the seed-derived fleet trace id the worker must prefix its
// per-APK trace ids with, and the name of the coordinator's per-partition
// span to parent the worker's run span under.
type LeaseGrant struct {
	Partition int           `json:"partition"`
	Tag       string        `json:"tag,omitempty"`
	TTL       time.Duration `json:"ttl,omitempty"`
	Wait      bool          `json:"wait,omitempty"`
	Done      bool          `json:"done,omitempty"`
	TraceID   string        `json:"traceId,omitempty"`
	Parent    string        `json:"parent,omitempty"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
	// MetricsURL announces the worker's live /metrics endpoint for
	// coordinator pulls (Federation only; "" = not scrapeable).
	MetricsURL string `json:"metricsUrl,omitempty"`
}

// partitionSpan names the coordinator's per-partition span in the fleet
// trace.
func partitionSpan(tag string) string { return "partition:" + tag }

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if c.fed != nil {
		c.fed.RegisterWorker(req.Worker, req.MetricsURL)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()

	if len(c.complete) == c.spec.Shards {
		writeJSON(w, http.StatusOK, LeaseGrant{Partition: -1, Done: true})
		return
	}
	for p := 0; p < c.spec.Shards; p++ {
		if _, ok := c.complete[p]; ok {
			continue
		}
		if _, ok := c.leases[p]; ok {
			continue
		}
		now := c.now()
		tag := PartitionTag(p, c.spec.Shards)
		l := &lease{worker: req.Worker, expires: now.Add(c.spec.TTL()), granted: now}
		if c.fed != nil {
			l.span = c.hub.Trace(c.traceID).Start(partitionSpan(tag), "worker", req.Worker)
		}
		c.leases[p] = l
		if c.firstGrant.IsZero() {
			c.firstGrant = now
		}
		c.metrics.grants.Inc()
		c.metrics.inflight.Add(1)
		grant := LeaseGrant{
			Partition: p,
			Tag:       tag,
			TTL:       c.spec.TTL(),
		}
		if c.fed != nil {
			grant.TraceID = c.traceID
			grant.Parent = partitionSpan(tag)
		}
		writeJSON(w, http.StatusOK, grant)
		return
	}
	// Nothing free, nothing done-for-good: the worker should poll again.
	writeJSON(w, http.StatusOK, LeaseGrant{Partition: -1, Wait: true})
}

type renewRequest struct {
	Worker    string `json:"worker"`
	Partition int    `json:"partition"`
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()

	l, ok := c.leases[req.Partition]
	if !ok || l.worker != req.Worker {
		// The lease expired (and may already be re-issued elsewhere): the
		// worker must abandon the partition.
		c.metrics.rejects.Inc()
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	l.expires = c.now().Add(c.spec.TTL())
	l.renewed = c.now()
	c.metrics.renewals.Inc()
	if c.fed != nil {
		c.fed.Heartbeat(req.Worker)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

type resultRequest struct {
	Worker    string           `json:"worker"`
	Partition int              `json:"partition"`
	ConfigKey string           `json:"configKey"`
	Result    *pipeline.Result `json:"result"`
	// MetricsProm / TraceJSONL are the partition's federated telemetry
	// (Federation only): the registry delta this partition's run added to
	// the worker's hub as Prometheus text, and the spans it recorded as
	// JSONL. They are ingested if and only if the result is accepted, so
	// the fleet rollup inherits the merge's exactly-once semantics.
	MetricsProm []byte `json:"metricsProm,omitempty"`
	TraceJSONL  []byte `json:"traceJsonl,omitempty"`
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Result == nil {
		http.Error(w, "missing result", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()

	if c.spec.ConfigKey != "" && req.ConfigKey != c.spec.ConfigKey {
		// The worker ran a different analysis configuration; merging its
		// partition would silently corrupt the report.
		c.metrics.mismatch.Inc()
		http.Error(w, "analysis configuration mismatch", http.StatusConflict)
		return
	}
	l, ok := c.leases[req.Partition]
	if !ok || l.worker != req.Worker {
		// Stale submission: the lease expired and the partition is (or will
		// be) re-scanned by a peer. Exactly-once on the merge side means
		// refusing this copy — and with it the attached metrics delta and
		// spans, which is what keeps a killed worker's partial snapshot out
		// of the fleet rollup.
		c.metrics.stale.Inc()
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	delete(c.leases, req.Partition)
	c.metrics.inflight.Add(-1)
	c.complete[req.Partition] = req.Result
	c.metrics.accepted.Inc()
	l.span.SetAttr("outcome", "accepted")
	l.span.End()
	if c.fed != nil {
		c.fed.Heartbeat(req.Worker)
		wall := c.now().Sub(l.granted)
		if err := c.fed.AcceptResult(req.Partition, req.Worker, req.MetricsProm, req.TraceJSONL, wall); err != nil {
			// The report is good even when the telemetry payload is not;
			// log-by-metric and move on rather than failing the partition.
			c.metrics.snapshotRejects.Inc()
		}
	}

	if len(c.complete) == c.spec.Shards {
		start := time.Now()
		parts := make([]*pipeline.Result, c.spec.Shards)
		for p, res := range c.complete {
			parts[p] = res
		}
		c.merged = Merge(parts)
		c.mergeDur = time.Since(start)
		c.metrics.mergeSeconds.Observe(c.mergeDur.Seconds())
		close(c.done)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// Status is the coordinator's progress snapshot.
type Status struct {
	Shards    int  `json:"shards"`
	Completed int  `json:"completed"`
	Inflight  int  `json:"inflight"`
	Done      bool `json:"done"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.sweep()
	st := Status{
		Shards:    c.spec.Shards,
		Completed: len(c.complete),
		Inflight:  len(c.leases),
		Done:      len(c.complete) == c.spec.Shards,
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// snapshotRequest is a worker's out-of-band registry flush — pushed on
// graceful shutdown so even a worker that exits between leases reports
// its final counters.
type snapshotRequest struct {
	Worker      string `json:"worker"`
	MetricsProm []byte `json:"metricsProm"`
}

func (c *Coordinator) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "missing worker", http.StatusBadRequest)
		return
	}
	if err := c.fed.FinalFlush(req.Worker, req.MetricsProm); err != nil {
		http.Error(w, "bad snapshot", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	c.fed.Scrape(r.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.URL.Query().Get("view") == "rollup" {
		c.fed.WriteRollupProm(w)
		return
	}
	c.fed.WriteFleetProm(w)
}

func (c *Coordinator) handleFleetMetricsJSON(w http.ResponseWriter, r *http.Request) {
	c.fed.Scrape(r.Context())
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	c.fed.WriteFleetJSON(w)
}

func (c *Coordinator) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	if r.URL.Query().Get("view") == "control" {
		telemetry.WriteTraceJSONL(w, c.controlSpans())
		return
	}
	c.fed.WriteTraceJSONL(w)
}

// controlSpans merges the coordinator's own per-partition spans with the
// run spans workers submitted — the topology-shaped control-plane trace,
// served separately from the deterministic per-APK export.
func (c *Coordinator) controlSpans() []telemetry.SpanLine {
	lines := c.fed.ControlSpans()
	var sb strings.Builder
	if err := c.hub.Tracer().WriteJSONL(&sb); err == nil {
		if own, err := telemetry.ParseTraceJSONL(strings.NewReader(sb.String())); err == nil {
			for _, line := range own {
				if line.Trace == c.traceID {
					lines = append(lines, line)
				}
			}
		}
	}
	return lines
}

func (c *Coordinator) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	c.fed.Scrape(r.Context())
	doc := c.statusDoc()
	wantText := r.URL.Query().Get("format") == "text" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain")
	if wantText {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fleet.RenderStatus(w, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// statusDoc assembles the live fleet status from the lease ledger and the
// federated snapshots.
func (c *Coordinator) statusDoc() *fleet.StatusDoc {
	c.mu.Lock()
	c.sweep()
	now := c.now()
	ttl := c.spec.TTL()
	doc := &fleet.StatusDoc{
		Shards:     c.spec.Shards,
		Seed:       c.spec.Seed,
		TraceID:    c.traceID,
		CorpusSize: c.spec.CorpusEntries,
		Done:       len(c.complete),
		Finished:   len(c.complete) == c.spec.Shards,
	}
	if !c.firstGrant.IsZero() {
		doc.ElapsedS = now.Sub(c.firstGrant).Seconds()
	}
	var wallSum time.Duration
	var wallN int
	for p := 0; p < c.spec.Shards; p++ {
		ps := fleet.PartitionStatus{
			Partition: p,
			Tag:       PartitionTag(p, c.spec.Shards),
			State:     "pending",
		}
		if _, done := c.complete[p]; done {
			ps.State = "done"
			if counts, worker, wall, ok := c.fed.PartitionCounts(p); ok {
				ps.Worker = worker
				ps.APKs = counts.APKs
				ps.WallS = wall.Seconds()
				if wall > 0 {
					ps.APKsPerSec = float64(counts.APKs) / wall.Seconds()
					wallSum += wall
					wallN++
				}
			}
		} else if l, leased := c.leases[p]; leased {
			ps.State = "leased"
			ps.Worker = l.worker
			ps.LeaseExpiresInS = l.expires.Sub(now).Seconds()
			if !l.renewed.IsZero() {
				ps.RenewAgeS = now.Sub(l.renewed).Seconds()
			}
			doc.Leased++
		}
		if ps.State == "pending" {
			doc.Pending++
		}
		doc.Partitions = append(doc.Partitions, ps)
	}
	c.mu.Unlock()

	doc.Fleet = c.fed.RollupCounts()
	doc.StageLatency = c.fed.StageQuantiles()
	if doc.ElapsedS > 0 {
		doc.APKsPerSec = float64(doc.Fleet.APKs) / doc.ElapsedS
	}

	liveWorkers := 0
	for _, wk := range c.fed.Workers() {
		ws := fleet.WorkerStatus{
			Name:         wk.Name,
			MetricsURL:   wk.MetricsURL,
			LastSeenAgoS: now.Sub(wk.LastSeen).Seconds(),
			Flushed:      wk.Flushed,
			ScrapeErr:    wk.ScrapeErr,
		}
		// Staleness rule: a worker silent for longer than the lease TTL is
		// stale — any lease it held has already been swept and re-issued.
		ws.Stale = now.Sub(wk.LastSeen) > ttl
		if counts, ok := c.fed.WorkerCounts(wk.Name); ok {
			ws.APKs = counts.APKs
		}
		if !ws.Stale && !wk.Flushed {
			liveWorkers++
		}
		doc.Workers = append(doc.Workers, ws)
	}

	// ETA: remaining partitions at the average completed-partition wall,
	// spread over the live workers.
	if remaining := doc.Shards - doc.Done; remaining > 0 && wallN > 0 {
		avg := wallSum.Seconds() / float64(wallN)
		workers := liveWorkers
		if workers < 1 {
			workers = 1
		}
		doc.ETASeconds = float64(remaining) * avg / float64(workers)
	}
	return doc
}

// Wait blocks until every partition is complete and returns the merged
// report, or the context error.
func (c *Coordinator) Wait(ctx context.Context) (*pipeline.Result, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.merged, nil
}

// MergeLatency reports how long the final merge took (zero until done).
func (c *Coordinator) MergeLatency() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mergeDur
}

// maxBody bounds control-plane request bodies. Result payloads carry every
// analysed app of a partition, so the ceiling is generous; everything else
// is tiny.
const maxBody = 256 << 20

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "bad json", http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
