// Package shard is the coordinator/worker scan plane that takes the static
// pipeline from one process to N: the coordinator partitions the AndroZoo
// snapshot by hash-of-package, hands out per-partition work leases over
// HTTP (TTL + renewal; an expired lease is re-issued so a killed worker's
// partition is re-scanned by a peer), collects per-shard pipeline.Result
// payloads, and merges them into a report byte-identical to a
// single-process run.
//
// Exactly-once, re-download-zero semantics across worker crashes come from
// the layers below, not from the control plane: each partition's JSONL
// journal (bound to the partition spec, see pipeline.Config.Partition)
// replays completed packages without re-downloading them, and the
// content-addressed resultcache is shared by every shard as a common blob
// tier, so even a package that was downloaded but not yet journaled costs
// only the download on re-scan, never the analysis.
package shard

import (
	"fmt"
	"hash/fnv"
	"time"
)

// partitionFn names the partition function baked into this build. It is
// fingerprinted into every partition tag, so changing the function (or its
// version) orphans old journals instead of resuming them against a
// different package→shard mapping.
const partitionFn = "fnv1a-64/v1"

// PartitionOf maps a package name to its shard partition: FNV-1a 64 of the
// package modulo the shard count. Every layer — coordinator, workers,
// tests — must agree on this mapping, which is why it is a pure function
// of (package, shards) and not coordinator state.
func PartitionOf(pkg string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(pkg))
	return int(h.Sum64() % uint64(shards))
}

// PartitionTag renders the journal-binding partition spec for one shard:
// "index/shards@hash", where the hash fingerprints the partition function
// and shard count. A journal written under any other tag — different
// index, different shard count, different partition function — is foreign
// and must not be resumed.
func PartitionTag(index, shards int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", partitionFn, shards)
	return fmt.Sprintf("%d/%d@%x", index, shards, h.Sum64())
}

// RunSpec is the scan configuration the coordinator serves to joining
// workers: everything a worker needs to run its partitions exactly like
// every other worker, so per-shard results merge into one coherent report.
type RunSpec struct {
	// Shards is the partition count (= the number of leases to complete).
	Shards int `json:"shards"`

	// RepoURL / StoreURL locate the AndroZoo repository and Play Store
	// metadata service the workers scan.
	RepoURL  string `json:"repoUrl"`
	StoreURL string `json:"storeUrl"`

	// MinDownloads / UpdatedAfter are the paper's selection filter; zero
	// values use the defaults (100K downloads, 2021-01-01).
	MinDownloads int64     `json:"minDownloads,omitempty"`
	UpdatedAfter time.Time `json:"updatedAfter,omitempty"`

	// Workers bounds per-stage concurrency inside one shard's pipeline
	// (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// Lint / LintRules / URLs enable the optional analysis stages; they
	// are part of the analysis configuration fingerprint, so all shards
	// must run them identically.
	Lint      bool     `json:"lint,omitempty"`
	LintRules []string `json:"lintRules,omitempty"`
	URLs      bool     `json:"urls,omitempty"`

	// MaxFailureFrac is each shard's quarantine error budget.
	MaxFailureFrac float64 `json:"maxFailureFrac,omitempty"`

	// CacheDir, when non-empty, is the shared content-addressed blob tier:
	// every worker opens a persistent resultcache over this directory, so
	// an APK analysed by any shard (or a previous run) is never analysed
	// again anywhere.
	CacheDir string `json:"cacheDir,omitempty"`

	// JournalDir, when non-empty, holds one journal per partition
	// (shard-<i>-of-<n>.journal). A worker re-leasing a partition resumes
	// its journal and re-downloads zero journaled packages.
	JournalDir string `json:"journalDir,omitempty"`

	// DownloadLatency models the repository's per-APK transfer time (the
	// real AndroZoo is network-bound, the in-process simulator is not).
	// Applied identically to every shard, and to the 1-shard baseline, so
	// benchmark speedups measure the plane, not a handicapped control.
	DownloadLatency time.Duration `json:"downloadLatency,omitempty"`

	// LeaseTTL bounds how long a silent worker holds a partition before
	// the coordinator re-issues it (0 = DefaultLeaseTTL). Workers renew at
	// TTL/3.
	LeaseTTL time.Duration `json:"leaseTtl,omitempty"`

	// ConfigKey is the analysis-configuration fingerprint the coordinator
	// expects (pipeline.ConfigKey of the reference configuration). A
	// worker whose local configuration fingerprints differently refuses to
	// join rather than contaminate the merged report.
	ConfigKey string `json:"configKey,omitempty"`

	// Seed drives every seed-derived quantity in the run — deterministic
	// telemetry timings and the fleet trace id — so all workers observe
	// with the same clock discipline whatever process they run in.
	Seed int64 `json:"seed,omitempty"`

	// Federation enables the fleet observability plane: workers build a
	// per-process telemetry hub, push per-partition registry deltas and
	// trace spans with each /v1/result, announce a /metrics URL for live
	// scrapes, and flush a final snapshot on shutdown; the coordinator
	// merges everything behind the /fleet/* endpoints.
	Federation bool `json:"federation,omitempty"`

	// Trace enables span tracing in worker hubs (per-APK traces, stitched
	// fleet-wide by the coordinator). Only meaningful with Federation.
	Trace bool `json:"trace,omitempty"`

	// Wallclock makes worker hubs record real durations instead of the
	// seed-derived deterministic timings — the live-operations trade-off,
	// at the cost of the byte-identical federated snapshot.
	Wallclock bool `json:"wallclock,omitempty"`

	// CorpusEntries is the streamed corpus size (entries in the AndroZoo
	// snapshot), used by /fleet/status to estimate progress and ETA. Zero
	// means unknown.
	CorpusEntries int `json:"corpusEntries,omitempty"`
}

// DefaultLeaseTTL is the lease lifetime when RunSpec.LeaseTTL is unset.
const DefaultLeaseTTL = 30 * time.Second

// TTL returns the effective lease TTL.
func (s RunSpec) TTL() time.Duration {
	if s.LeaseTTL > 0 {
		return s.LeaseTTL
	}
	return DefaultLeaseTTL
}
