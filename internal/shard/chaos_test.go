// Chaos test for the scan plane: a worker killed mid-lease must not cost
// the run anything but the lease TTL — the re-issued partition resumes the
// dead worker's journal, re-downloads zero journaled packages, and the
// final merged report is byte-identical to an uninterrupted run.
package shard_test

import (
	"context"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

func TestChaosKilledWorkerPartitionResumes(t *testing.T) {
	c := testCorpus(t)
	const shards = 4

	// The kill must land mid-partition-0: count partition 0's downloads
	// (every eligible app of the partition) and stop a few short.
	part0 := 0
	for _, s := range c.Apps {
		if s.Eligible(corpus.MinDownloads, corpus.UpdateCutoff) && shard.PartitionOf(s.Package, shards) == 0 {
			part0++
		}
	}
	if part0 < 6 {
		t.Fatalf("partition 0 has only %d eligible apps; corpus too small for a mid-lease kill", part0)
	}
	killAfter := part0 - 3

	// Uninterrupted reference: the plain sequential pipeline.
	ref, err := pipeline.New(newTestRepo(c), &testMeta{c: c}, pipeline.Config{
		MinDownloads: corpus.MinDownloads, UpdatedAfter: corpus.UpdateCutoff,
	}).Run(context.Background())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	clock := newFakeClock()
	ttl := time.Hour // renewal tickers (TTL/3) never fire inside the test
	dir := t.TempDir()
	coord, srv := startCoordinator(t, shard.CoordinatorConfig{
		Spec: shard.RunSpec{
			Shards:       shards,
			MinDownloads: corpus.MinDownloads,
			UpdatedAfter: corpus.UpdateCutoff,
			JournalDir:   dir,
			CacheDir:     filepath.Join(dir, "cache"),
			LeaseTTL:     ttl,
		},
		Now: clock.Now,
	})

	// Worker A: its context is cut after killAfter downloads — an OS kill
	// as the pipeline sees one, mid-lease with the journal partly written.
	repo := newTestRepo(c)
	ctxA, killA := context.WithCancel(context.Background())
	defer killA()
	var downloads atomic.Int64
	repo.setOnDownload(func(pkg string, nth int) {
		if downloads.Add(1) == int64(killAfter) {
			killA()
		}
	})
	wA, err := shard.NewWorker(shard.WorkerConfig{
		Coordinator: srv.URL,
		Name:        "doomed",
		Poll:        10 * time.Millisecond,
		Services:    inProcessServices(repo, &testMeta{c: c}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wA.Run(ctxA); err == nil {
		t.Fatal("killed worker reported a clean run")
	}
	if wA.Completed() != 0 {
		t.Fatalf("killed worker completed %d partitions, want 0", wA.Completed())
	}
	repo.setOnDownload(nil)

	// The dead worker's journal holds its checkpointed packages.
	journalPath := filepath.Join(dir, "shard-0-of-4.journal")
	j, err := pipeline.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	journaled := j.Packages()
	j.Close()
	if len(journaled) == 0 {
		t.Fatal("killed worker journaled nothing; kill landed too early to test resume")
	}
	if len(journaled) >= part0 {
		t.Fatalf("killed worker journaled all %d packages; kill landed too late", part0)
	}

	// Partition 0 is still leased to the corpse. Let the lease expire.
	clock.Advance(ttl + time.Second)

	// Worker B finishes the run: partition 0 resumed from the journal,
	// then the untouched partitions.
	wB, err := shard.NewWorker(shard.WorkerConfig{
		Coordinator: srv.URL,
		Name:        "survivor",
		Poll:        10 * time.Millisecond,
		Services:    inProcessServices(repo, &testMeta{c: c}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := wB.Run(ctx); err != nil {
		t.Fatalf("surviving worker: %v", err)
	}
	if wB.Completed() != shards {
		t.Fatalf("surviving worker completed %d partitions, want %d", wB.Completed(), shards)
	}

	merged, err := coord.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Re-download-zero: every journaled package was downloaded exactly
	// once — by the dead worker. The resume replayed it from the journal.
	dl := repo.downloads()
	for _, pkg := range journaled {
		if dl[pkg] != 1 {
			t.Fatalf("journaled package %s downloaded %d times, want 1", pkg, dl[pkg])
		}
	}
	// The resume skipped exactly the journaled packages.
	if merged.Stats.JournalSkips != len(journaled) {
		t.Fatalf("journal skips = %d, want %d", merged.Stats.JournalSkips, len(journaled))
	}

	// And the interrupted run's report is the uninterrupted run's report.
	if merged.Funnel != ref.Funnel {
		t.Fatalf("funnel diverged:\n  interrupted   %+v\n  uninterrupted %+v", merged.Funnel, ref.Funnel)
	}
	if !reflect.DeepEqual(merged.Apps, ref.Apps) {
		t.Fatal("per-app results diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(merged.Quarantined, ref.Quarantined) {
		t.Fatalf("quarantines diverged: %+v vs %+v", merged.Quarantined, ref.Quarantined)
	}
	if got, want := renderAllTables(t, merged), renderAllTables(t, ref); got != want {
		t.Fatalf("rendered tables diverged:\n--- interrupted ---\n%s\n--- uninterrupted ---\n%s", got, want)
	}
}
