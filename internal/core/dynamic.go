package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/device"
	"repro/internal/frida"
	"repro/internal/iab"
	"repro/internal/internet"
	"repro/internal/measure"
	"repro/internal/retry"
	"repro/internal/serving"
	"repro/internal/webview"
)

// Table6 is the hyperlink-behaviour classification of the top apps
// (§3.2.1).
type Table6 struct {
	CanPostLinks   int
	OpensBrowser   int
	OpensWebView   int
	OpensCustomTab int
	NoUserContent  int
	BrowserApps    int
	Unclassifiable int
	RequiredPhone  int
	Incompatible   int
	RequiredPaid   int
	// WebViewIABApps lists the packages whose links open WebView IABs —
	// the apps the deep probe instruments next.
	WebViewIABApps []string
}

// DynamicStudy hosts the semi-manual analyses on a fleet of devices.
type DynamicStudy struct {
	// Device is the primary handset (fleet device 0); single-device
	// analyses and existing callers use it directly.
	Device *device.Device
	// Net is the in-process internet every fleet device is attached to.
	Net *internet.Internet
	// Fleet is the full device set; app probes are pinned round-robin.
	Fleet *device.Fleet
	// Workers bounds concurrently in-flight app probes (<=1 with one
	// device keeps the study strictly sequential).
	Workers int
}

// NewDynamicStudy boots a single device on a fresh internet.
func NewDynamicStudy() *DynamicStudy {
	return NewDynamicStudyFleet(1, 1)
}

// NewDynamicStudyFleet boots a fleet of identically provisioned devices on
// one internet and fans app probes across them: probe i runs on device
// i mod devices, with at most workers probes in flight. Results are merged
// in input order, so the output is identical to the sequential study.
func NewDynamicStudyFleet(devices, workers int) *DynamicStudy {
	net := internet.New()
	fleet := device.NewFleet(net, devices)
	return &DynamicStudy{Device: fleet.Device(0), Net: net, Fleet: fleet, Workers: workers}
}

// sequential reports whether the study must run one probe at a time.
func (d *DynamicStudy) sequential() bool {
	return d.Workers <= 1 && (d.Fleet == nil || d.Fleet.Size() == 1)
}

// forEachSpec runs fn(i, spec) for every spec — in order when sequential,
// otherwise fanned out under the worker pool. fn must write its result
// into slot i of a caller-owned slice; the caller merges in index order.
func (d *DynamicStudy) forEachSpec(specs []*corpus.Spec, fn func(i int, spec *corpus.Spec)) {
	if d.sequential() {
		for i, spec := range specs {
			fn(i, spec)
		}
		return
	}
	workers := d.Workers
	if workers <= 0 {
		workers = len(specs)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, spec *corpus.Spec) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i, spec)
		}(i, spec)
	}
	wg.Wait()
}

// reportPolicy is the client-side policy for beacon uploads to the
// measurement collector: a few fast retries honoring any server-advised
// Retry-After, with delays capped so a probe never stalls visibly.
func (d *DynamicStudy) reportPolicy() *retry.Policy {
	return &retry.Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Seed:        1,
	}
}

// pinned returns the device probe i runs on.
func (d *DynamicStudy) pinned(i int) *device.Device {
	if d.Fleet == nil {
		return d.Device
	}
	return d.Fleet.Device(i)
}

// registerRedirectors serves the click-tracking redirector hosts the IAB
// apps route links through (lm.facebook.com/l.php, l.instagram.com, t.co):
// the redirector logs the click identifier and 302s to the intended URL.
func (d *DynamicStudy) registerRedirectors(specs []*corpus.Spec) {
	seen := map[string]bool{}
	for _, spec := range specs {
		r := spec.Dynamic.UsesRedirector
		if r == "" {
			continue
		}
		host := r
		if i := strings.IndexByte(host, '/'); i >= 0 {
			host = host[:i]
		}
		if seen[host] {
			continue
		}
		seen[host] = true
		d.Net.RegisterFunc(host, func(w http.ResponseWriter, r *http.Request) {
			target := r.URL.Query().Get("u")
			if target == "" {
				http.Error(w, "missing target", http.StatusBadRequest)
				return
			}
			http.Redirect(w, r, target, http.StatusFound)
		})
	}
}

// probeURL is the benign link posted during classification (the paper
// posts https://example.com).
const probeURL = "https://example.com/"

// classKind is the outcome of classifying one app.
type classKind int

const (
	classIncompatible classKind = iota
	classNeedsPhone
	classPaid
	classBrowserApp
	classNoUserContent
	classOpensWebView
	classOpensCustomTab
	classOpensBrowser
)

type classOutcome struct {
	kind classKind
	err  error
}

// classifyOne runs the §3.2.1 probe for one app on one device: install,
// launch, look for a user-content surface, post the probe link, click it.
func (d *DynamicStudy) classifyOne(ctx context.Context, dev *device.Device, spec *corpus.Spec) classOutcome {
	app, err := dev.Install(spec)
	if err != nil {
		if errors.Is(err, device.ErrIncompatible) {
			return classOutcome{kind: classIncompatible}
		}
		return classOutcome{err: err}
	}
	sess, err := app.Launch()
	switch {
	case errors.Is(err, device.ErrNeedsPhone):
		return classOutcome{kind: classNeedsPhone}
	case errors.Is(err, device.ErrPaidOnly):
		return classOutcome{kind: classPaid}
	case err != nil:
		return classOutcome{err: err}
	}
	if sess.IsBrowser() {
		return classOutcome{kind: classBrowserApp}
	}
	if !sess.HasUserContent() {
		return classOutcome{kind: classNoUserContent}
	}
	if err := sess.PostLink(probeURL); err != nil {
		return classOutcome{err: err}
	}
	res, err := sess.ClickLink(ctx, probeURL)
	if err != nil {
		return classOutcome{err: fmt.Errorf("core: click in %s: %w", spec.Package, err)}
	}
	switch res.OpenedIn {
	case corpus.LinkWebView:
		return classOutcome{kind: classOpensWebView}
	case corpus.LinkCustomTab:
		return classOutcome{kind: classOpensCustomTab}
	default:
		return classOutcome{kind: classOpensBrowser}
	}
}

// ClassifyTopApps reproduces the §3.2.1 walk over the top apps: install
// each app, create a session, look for a user-content surface, post the
// probe link, click it, and record what happens. With a fleet, apps are
// classified concurrently (pinned to devices round-robin) and outcomes
// merged in input order, so Table 6 is identical either way.
func (d *DynamicStudy) ClassifyTopApps(ctx context.Context, specs []*corpus.Spec) (*Table6, error) {
	// Make sure the probe target exists on this internet.
	d.Net.RegisterFunc("example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>Example Domain</title></head><body><p>Example</p></body></html>`))
	})
	d.registerRedirectors(specs)

	outcomes := make([]classOutcome, len(specs))
	d.forEachSpec(specs, func(i int, spec *corpus.Spec) {
		outcomes[i] = d.classifyOne(ctx, d.pinned(i), spec)
	})

	t6 := &Table6{}
	for i, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
		switch o.kind {
		case classIncompatible:
			t6.Incompatible++
			t6.Unclassifiable++
		case classNeedsPhone:
			t6.RequiredPhone++
			t6.Unclassifiable++
		case classPaid:
			t6.RequiredPaid++
			t6.Unclassifiable++
		case classBrowserApp:
			t6.BrowserApps++
		case classNoUserContent:
			t6.NoUserContent++
		case classOpensWebView:
			t6.CanPostLinks++
			t6.OpensWebView++
			t6.WebViewIABApps = append(t6.WebViewIABApps, specs[i].Package)
		case classOpensCustomTab:
			t6.CanPostLinks++
			t6.OpensCustomTab++
		case classOpensBrowser:
			t6.CanPostLinks++
			t6.OpensBrowser++
		}
	}
	sort.Strings(t6.WebViewIABApps)
	return t6, nil
}

// Table8Row is the deep-probe result for one WebView-based IAB.
type Table8Row struct {
	Package   string
	Title     string
	Downloads int64
	Surface   string // where links appear (Post, DM, Story, Bio, Profile)
	// Injection evidence, from Frida-style instrumentation.
	InjectedJSCount int
	Bridges         []string
	// Inferred intents (the Table 8 cells).
	HTMLJSIntent string
	BridgeIntent string
	// Redirector is the click-tracking redirector observed ("" if none).
	Redirector string
	// WebAPITraces are the (interface, method) pairs the controlled page
	// recorded (Table 9).
	WebAPITraces []measure.Trace
	// ExternalHosts are the endpoints beyond the measurement server the
	// IAB contacted during the controlled visit.
	ExternalHosts []string
	// BehaviorStats carries behaviour-specific observations (tag counts,
	// simhashes, ad payloads).
	BehaviorStats map[string]any
}

// measureHost is where the controlled page is served.
const measureHost = "measure.controlled.test"

// ProbeIABs performs the §3.2.2 instrumented visit for each WebView-IAB
// app: hooks the WebView, navigates it to the controlled page, lets the
// app inject, and gathers the App-WebView interactions, the Web-API
// traces from the measurement server, and the network log.
//
// The collector sits behind the hardened serving plane: beacons pass
// admission control, body caps and the bounded ingest queue before the
// drain workers deliver them to the measure sink. The limits are sized so
// the probe fleet never sheds; the retry policy on the upload path covers
// the rest. The plane is drained (all accepted beacons flushed) before
// the rows are returned.
func (d *DynamicStudy) ProbeIABs(ctx context.Context, specs []*corpus.Spec) ([]Table8Row, *measure.Server, error) {
	srv := measure.NewServer()
	svc := serving.NewService(serving.Config{
		Sink:          srv,
		Pages:         srv.Handler(),
		QueueDepth:    4096,
		Workers:       2,
		MaxConcurrent: 256,
	})
	defer svc.Close()
	d.Net.Register(measureHost, svc.Handler())
	d.registerRedirectors(specs)

	var iabSpecs []*corpus.Spec
	for _, spec := range specs {
		if spec.Dynamic.LinkOpens == corpus.LinkWebView {
			iabSpecs = append(iabSpecs, spec)
		}
	}

	type probeOutcome struct {
		row *Table8Row
		err error
	}
	outcomes := make([]probeOutcome, len(iabSpecs))
	d.forEachSpec(iabSpecs, func(i int, spec *corpus.Spec) {
		row, err := d.probeOne(ctx, d.pinned(i), spec, srv, svc)
		outcomes[i] = probeOutcome{row: row, err: err}
	})
	// Graceful drain: every beacon accepted during the probes is flushed
	// into the sink before anyone reads the tables.
	if err := svc.Drain(ctx); err != nil {
		return nil, nil, err
	}

	var rows []Table8Row
	for _, o := range outcomes {
		if o.err != nil {
			return nil, nil, o.err
		}
		rows = append(rows, *o.row)
	}
	// Downloads descending, package as a total-order tie-break so the table
	// is stable regardless of scheduling.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Downloads != rows[j].Downloads {
			return rows[i].Downloads > rows[j].Downloads
		}
		return rows[i].Package < rows[j].Package
	})
	return rows, srv, nil
}

func (d *DynamicStudy) probeOne(ctx context.Context, dev *device.Device, spec *corpus.Spec, srv *measure.Server, svc *serving.Service) (*Table8Row, error) {
	app, err := dev.App(spec.Package)
	if err != nil {
		if app, err = dev.Install(spec); err != nil {
			return nil, err
		}
	}
	sess, err := app.Launch()
	if err != nil {
		return nil, err
	}
	target := "https://" + measureHost + "/"
	if err := sess.PostLink(target); err != nil {
		return nil, err
	}

	var fridaSess *frida.Session
	res, err := sess.ClickLinkInstrumented(ctx, target, func(wv *webview.WebView) {
		fridaSess = frida.Attach(wv)
	})
	if err != nil {
		return nil, fmt.Errorf("core: probe %s: %w", spec.Package, err)
	}
	if res.WebView == nil || fridaSess == nil {
		return nil, fmt.Errorf("core: %s did not open a WebView IAB", spec.Package)
	}

	// Upload the element-level API calls the page runtime recorded, as
	// the controlled page's batch channel.
	if err := measure.ReportAPICalls(ctx, d.Net.Client(), d.reportPolicy(), "https://"+measureHost+"/collect",
		spec.Package, res.WebView.Page().APICalls()); err != nil {
		return nil, err
	}

	// Read-your-writes barrier: the serving plane's queue is asynchronous,
	// so wait for everything accepted so far to reach the sink before
	// building this app's Table 9 row from it.
	svc.Flush()

	htmlIntent, bridgeIntent := iab.InferIntent(res.Behavior)
	row := &Table8Row{
		Package:         spec.Package,
		Title:           spec.Title,
		Downloads:       spec.Downloads,
		Surface:         spec.Dynamic.LinkSurface,
		InjectedJSCount: len(fridaSess.InjectedJS()),
		Bridges:         fridaSess.Bridges(),
		HTMLJSIntent:    htmlIntent,
		BridgeIntent:    bridgeIntent,
		Redirector:      spec.Dynamic.UsesRedirector,
		WebAPITraces:    srv.ForApp(spec.Package),
		ExternalHosts:   dev.NetLog.HostsNotUnder(res.Context, measureHost),
		BehaviorStats:   iab.BehaviorStats(res.Behavior),
	}
	sort.Strings(row.Bridges)
	return row, nil
}

// BaselineShellSpec returns the Android System WebView Shell stand-in used
// as the crawl baseline (§3.2.2): a WebView IAB with no injections.
func BaselineShellSpec() *corpus.Spec {
	return &corpus.Spec{
		Package:     "org.chromium.webview_shell",
		Title:       "System WebView Shell",
		OnPlayStore: true,
		Dynamic: corpus.Dynamic{
			HasUserContent: true,
			LinkSurface:    "URL bar",
			LinkOpens:      corpus.LinkWebView,
			Injection:      corpus.InjectNone,
		},
	}
}
