package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/device"
	"repro/internal/frida"
	"repro/internal/iab"
	"repro/internal/internet"
	"repro/internal/measure"
	"repro/internal/webview"
)

// Table6 is the hyperlink-behaviour classification of the top apps
// (§3.2.1).
type Table6 struct {
	CanPostLinks   int
	OpensBrowser   int
	OpensWebView   int
	OpensCustomTab int
	NoUserContent  int
	BrowserApps    int
	Unclassifiable int
	RequiredPhone  int
	Incompatible   int
	RequiredPaid   int
	// WebViewIABApps lists the packages whose links open WebView IABs —
	// the apps the deep probe instruments next.
	WebViewIABApps []string
}

// DynamicStudy hosts the semi-manual analyses on one device.
type DynamicStudy struct {
	Device *device.Device
	// Net is the in-process internet the device is attached to.
	Net *internet.Internet
}

// NewDynamicStudy boots a device on a fresh internet.
func NewDynamicStudy() *DynamicStudy {
	net := internet.New()
	return &DynamicStudy{Device: device.New(net), Net: net}
}

// registerRedirectors serves the click-tracking redirector hosts the IAB
// apps route links through (lm.facebook.com/l.php, l.instagram.com, t.co):
// the redirector logs the click identifier and 302s to the intended URL.
func (d *DynamicStudy) registerRedirectors(specs []*corpus.Spec) {
	seen := map[string]bool{}
	for _, spec := range specs {
		r := spec.Dynamic.UsesRedirector
		if r == "" {
			continue
		}
		host := r
		if i := strings.IndexByte(host, '/'); i >= 0 {
			host = host[:i]
		}
		if seen[host] {
			continue
		}
		seen[host] = true
		d.Net.RegisterFunc(host, func(w http.ResponseWriter, r *http.Request) {
			target := r.URL.Query().Get("u")
			if target == "" {
				http.Error(w, "missing target", http.StatusBadRequest)
				return
			}
			http.Redirect(w, r, target, http.StatusFound)
		})
	}
}

// probeURL is the benign link posted during classification (the paper
// posts https://example.com).
const probeURL = "https://example.com/"

// ClassifyTopApps reproduces the §3.2.1 walk over the top apps: install
// each app, create a session, look for a user-content surface, post the
// probe link, click it, and record what happens.
func (d *DynamicStudy) ClassifyTopApps(ctx context.Context, specs []*corpus.Spec) (*Table6, error) {
	// Make sure the probe target exists on this internet.
	d.Net.RegisterFunc("example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>Example Domain</title></head><body><p>Example</p></body></html>`))
	})
	d.registerRedirectors(specs)
	t6 := &Table6{}
	for _, spec := range specs {
		app, err := d.Device.Install(spec)
		if err != nil {
			if errors.Is(err, device.ErrIncompatible) {
				t6.Incompatible++
				t6.Unclassifiable++
				continue
			}
			return nil, err
		}
		sess, err := app.Launch()
		switch {
		case errors.Is(err, device.ErrNeedsPhone):
			t6.RequiredPhone++
			t6.Unclassifiable++
			continue
		case errors.Is(err, device.ErrPaidOnly):
			t6.RequiredPaid++
			t6.Unclassifiable++
			continue
		case err != nil:
			return nil, err
		}
		if sess.IsBrowser() {
			t6.BrowserApps++
			continue
		}
		if !sess.HasUserContent() {
			t6.NoUserContent++
			continue
		}
		t6.CanPostLinks++
		if err := sess.PostLink(probeURL); err != nil {
			return nil, err
		}
		res, err := sess.ClickLink(ctx, probeURL)
		if err != nil {
			return nil, fmt.Errorf("core: click in %s: %w", spec.Package, err)
		}
		switch res.OpenedIn {
		case corpus.LinkWebView:
			t6.OpensWebView++
			t6.WebViewIABApps = append(t6.WebViewIABApps, spec.Package)
		case corpus.LinkCustomTab:
			t6.OpensCustomTab++
		default:
			t6.OpensBrowser++
		}
	}
	sort.Strings(t6.WebViewIABApps)
	return t6, nil
}

// Table8Row is the deep-probe result for one WebView-based IAB.
type Table8Row struct {
	Package   string
	Title     string
	Downloads int64
	Surface   string // where links appear (Post, DM, Story, Bio, Profile)
	// Injection evidence, from Frida-style instrumentation.
	InjectedJSCount int
	Bridges         []string
	// Inferred intents (the Table 8 cells).
	HTMLJSIntent string
	BridgeIntent string
	// Redirector is the click-tracking redirector observed ("" if none).
	Redirector string
	// WebAPITraces are the (interface, method) pairs the controlled page
	// recorded (Table 9).
	WebAPITraces []measure.Trace
	// ExternalHosts are the endpoints beyond the measurement server the
	// IAB contacted during the controlled visit.
	ExternalHosts []string
	// BehaviorStats carries behaviour-specific observations (tag counts,
	// simhashes, ad payloads).
	BehaviorStats map[string]any
}

// measureHost is where the controlled page is served.
const measureHost = "measure.controlled.test"

// ProbeIABs performs the §3.2.2 instrumented visit for each WebView-IAB
// app: hooks the WebView, navigates it to the controlled page, lets the
// app inject, and gathers the App-WebView interactions, the Web-API
// traces from the measurement server, and the network log.
func (d *DynamicStudy) ProbeIABs(ctx context.Context, specs []*corpus.Spec) ([]Table8Row, *measure.Server, error) {
	srv := measure.NewServer()
	d.Net.Register(measureHost, srv.Handler())
	d.registerRedirectors(specs)

	var rows []Table8Row
	for _, spec := range specs {
		if spec.Dynamic.LinkOpens != corpus.LinkWebView {
			continue
		}
		row, err := d.probeOne(ctx, spec, srv)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Downloads > rows[j].Downloads })
	return rows, srv, nil
}

func (d *DynamicStudy) probeOne(ctx context.Context, spec *corpus.Spec, srv *measure.Server) (*Table8Row, error) {
	app, err := d.Device.App(spec.Package)
	if err != nil {
		if app, err = d.Device.Install(spec); err != nil {
			return nil, err
		}
	}
	sess, err := app.Launch()
	if err != nil {
		return nil, err
	}
	target := "https://" + measureHost + "/"
	if err := sess.PostLink(target); err != nil {
		return nil, err
	}

	var fridaSess *frida.Session
	res, err := sess.ClickLinkInstrumented(ctx, target, func(wv *webview.WebView) {
		fridaSess = frida.Attach(wv)
	})
	if err != nil {
		return nil, fmt.Errorf("core: probe %s: %w", spec.Package, err)
	}
	if res.WebView == nil || fridaSess == nil {
		return nil, fmt.Errorf("core: %s did not open a WebView IAB", spec.Package)
	}

	// Upload the element-level API calls the page runtime recorded, as
	// the controlled page's batch channel.
	if err := measure.ReportAPICalls(d.Net.Client(), "https://"+measureHost+"/collect",
		spec.Package, res.WebView.Page().APICalls()); err != nil {
		return nil, err
	}

	htmlIntent, bridgeIntent := iab.InferIntent(res.Behavior)
	row := &Table8Row{
		Package:         spec.Package,
		Title:           spec.Title,
		Downloads:       spec.Downloads,
		Surface:         spec.Dynamic.LinkSurface,
		InjectedJSCount: len(fridaSess.InjectedJS()),
		Bridges:         fridaSess.Bridges(),
		HTMLJSIntent:    htmlIntent,
		BridgeIntent:    bridgeIntent,
		Redirector:      spec.Dynamic.UsesRedirector,
		WebAPITraces:    srv.ForApp(spec.Package),
		ExternalHosts:   d.Device.NetLog.HostsNotUnder(res.Context, measureHost),
		BehaviorStats:   iab.BehaviorStats(res.Behavior),
	}
	sort.Strings(row.Bridges)
	return row, nil
}

// BaselineShellSpec returns the Android System WebView Shell stand-in used
// as the crawl baseline (§3.2.2): a WebView IAB with no injections.
func BaselineShellSpec() *corpus.Spec {
	return &corpus.Spec{
		Package:     "org.chromium.webview_shell",
		Title:       "System WebView Shell",
		OnPlayStore: true,
		Dynamic: corpus.Dynamic{
			HasUserContent: true,
			LinkSurface:    "URL bar",
			LinkOpens:      corpus.LinkWebView,
			Injection:      corpus.InjectNone,
		},
	}
}
