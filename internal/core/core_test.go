package core

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/androzoo"
	"repro/internal/corpus"
	"repro/internal/measure"
	"repro/internal/playstore"
)

func TestStaticStudyEndToEnd(t *testing.T) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 1500})
	if err != nil {
		t.Fatal(err)
	}
	azSrv := httptest.NewServer(androzoo.NewServer(c).Handler())
	defer azSrv.Close()
	psSrv := httptest.NewServer(playstore.NewServer(c).Handler())
	defer psSrv.Close()

	study, err := NewStaticStudy(
		androzoo.NewClient(azSrv.URL, azSrv.Client()),
		playstore.NewClient(psSrv.URL, psSrv.Client()),
		StaticConfig{},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Funnel.Analyzed != c.Counts.Analyzed {
		t.Errorf("analyzed = %d, want %d", res.Funnel.Analyzed, c.Counts.Analyzed)
	}
	if res.Aggregates.WebViewApps == 0 || res.Aggregates.CTApps == 0 {
		t.Errorf("aggregates empty: %+v", res.Aggregates)
	}
}

// top1kSpecs generates the full top-1K population for the dynamic study.
func top1kSpecs(t *testing.T) []*corpus.Spec {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	return c.Top(1000)
}

func TestClassifyTopAppsTable6(t *testing.T) {
	study := NewDynamicStudy()
	t6, err := study.ClassifyTopApps(context.Background(), top1kSpecs(t))
	if err != nil {
		t.Fatalf("ClassifyTopApps: %v", err)
	}
	// Table 6, exactly.
	if t6.CanPostLinks != 38 {
		t.Errorf("CanPostLinks = %d, want 38", t6.CanPostLinks)
	}
	if t6.OpensBrowser != 27 {
		t.Errorf("OpensBrowser = %d, want 27", t6.OpensBrowser)
	}
	if t6.OpensWebView != 10 {
		t.Errorf("OpensWebView = %d, want 10", t6.OpensWebView)
	}
	if t6.OpensCustomTab != 1 {
		t.Errorf("OpensCustomTab = %d, want 1", t6.OpensCustomTab)
	}
	if t6.NoUserContent != 905 {
		t.Errorf("NoUserContent = %d, want 905", t6.NoUserContent)
	}
	if t6.BrowserApps != 9 {
		t.Errorf("BrowserApps = %d, want 9", t6.BrowserApps)
	}
	if t6.Unclassifiable != 48 || t6.RequiredPhone != 24 || t6.Incompatible != 22 || t6.RequiredPaid != 2 {
		t.Errorf("unclassifiable = %d (phone %d, incompat %d, paid %d)",
			t6.Unclassifiable, t6.RequiredPhone, t6.Incompatible, t6.RequiredPaid)
	}
	// The ten WebView IABs are the named apps.
	if len(t6.WebViewIABApps) != 10 {
		t.Fatalf("WebViewIABApps = %v", t6.WebViewIABApps)
	}
	for _, want := range []string{"com.facebook.katana", "kik.android", "com.linkedin.android"} {
		found := false
		for _, got := range t6.WebViewIABApps {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missing from IAB list %v", want, t6.WebViewIABApps)
		}
	}
}

func TestProbeIABsTable8(t *testing.T) {
	study := NewDynamicStudy()
	// Probe only the named IAB apps (plus Discord, skipped as CT).
	var specs []*corpus.Spec
	for i := range corpus.NamedApps {
		n := corpus.NamedApps[i]
		specs = append(specs, &corpus.Spec{
			Package: n.Package, Title: n.Title, Downloads: n.Downloads,
			OnPlayStore: true, Dynamic: n.Dynamic,
		})
	}
	rows, srv, err := study.ProbeIABs(context.Background(), specs)
	if err != nil {
		t.Fatalf("ProbeIABs: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// Download-ordered: Facebook first.
	if rows[0].Package != "com.facebook.katana" {
		t.Errorf("first row = %s", rows[0].Package)
	}
	byPkg := make(map[string]*Table8Row)
	for i := range rows {
		byPkg[rows[i].Package] = &rows[i]
	}

	// Facebook: injections + three bridges + redirector.
	fb := byPkg["com.facebook.katana"]
	if fb.InjectedJSCount < 3 {
		t.Errorf("Facebook injected %d scripts, want >= 3", fb.InjectedJSCount)
	}
	bridges := strings.Join(fb.Bridges, ",")
	for _, want := range []string{"fbpayIAWBridge", "metaCheckoutIAWBridge", "_AutofillExtensions"} {
		if !strings.Contains(bridges, want) {
			t.Errorf("Facebook bridges = %s, missing %s", bridges, want)
		}
	}
	if fb.Redirector != "lm.facebook.com/l.php" {
		t.Errorf("Facebook redirector = %q", fb.Redirector)
	}
	if len(fb.WebAPITraces) == 0 {
		t.Error("Facebook produced no Web-API traces")
	}

	// Snapchat/Twitter/Reddit: no injections, no bridges (Table 8).
	for _, pkg := range []string{"com.snapchat.android", "com.twitter.android", "com.reddit.frontpage"} {
		row := byPkg[pkg]
		if row == nil {
			t.Fatalf("row for %s missing", pkg)
		}
		if row.InjectedJSCount != 0 || len(row.Bridges) != 0 {
			t.Errorf("%s: injected=%d bridges=%v, want none", pkg, row.InjectedJSCount, row.Bridges)
		}
		if len(srv.ForApp(pkg)) != 0 {
			t.Errorf("%s produced traces without injecting", pkg)
		}
	}

	// LinkedIn contacts Cedexis endpoints.
	li := byPkg["com.linkedin.android"]
	liHosts := strings.Join(li.ExternalHosts, ",")
	if !strings.Contains(liHosts, "cedexis") {
		t.Errorf("LinkedIn external hosts = %s", liHosts)
	}

	// Moj/Chingari: googleAdsJsInterface bridge, noAdView payload.
	for _, pkg := range []string{"in.mohalla.video", "io.chingari.app"} {
		row := byPkg[pkg]
		if len(row.Bridges) != 1 || row.Bridges[0] != "googleAdsJsInterface" {
			t.Errorf("%s bridges = %v", pkg, row.Bridges)
		}
		payloads, _ := row.BehaviorStats["adPayloads"].([]string)
		if len(payloads) != 1 || !strings.Contains(payloads[0], "noAdView") {
			t.Errorf("%s ad payloads = %v", pkg, payloads)
		}
	}

	// Kik: read-only APIs on the controlled page (Table 9): meta
	// getAttribute must appear, and no DOM-mutating call.
	kik := byPkg["kik.android"]
	var sawMeta bool
	for _, tr := range kik.WebAPITraces {
		if tr.Interface == "HTMLMetaElement" && tr.Method == "getAttribute" {
			sawMeta = true
		}
		if tr.Method == "insertBefore" || tr.Method == "appendChild" || tr.Method == "setAttribute" {
			t.Errorf("Kik made a mutating call: %+v", tr)
		}
	}
	if !sawMeta {
		t.Errorf("Kik traces = %+v, want HTMLMetaElement.getAttribute", kik.WebAPITraces)
	}
	if len(kik.ExternalHosts) < 5 {
		t.Errorf("Kik external hosts = %v", kik.ExternalHosts)
	}

	// Pinterest: obfuscated bridge only.
	pin := byPkg["com.pinterest"]
	if len(pin.Bridges) != 1 || pin.BridgeIntent != "(Obfuscated)" {
		t.Errorf("Pinterest = %+v", pin)
	}
}

func TestFacebookAutofillTraceMatchesTable9(t *testing.T) {
	study := NewDynamicStudy()
	n := corpus.NamedApps[0] // Facebook
	specs := []*corpus.Spec{{
		Package: n.Package, Title: n.Title, Downloads: n.Downloads,
		OnPlayStore: true, Dynamic: n.Dynamic,
	}}
	rows, _, err := study.ProbeIABs(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	traces := rows[0].WebAPITraces
	want := []measure.Trace{
		{Interface: "Document", Method: "getElementById"},
		{Interface: "Document", Method: "createElement"},
		{Interface: "Document", Method: "querySelectorAll"},
		{Interface: "Document", Method: "getElementsByTagName"},
		{Interface: "Document", Method: "addEventListener"},
		{Interface: "Document", Method: "removeEventListener"},
		{Interface: "Element", Method: "insertBefore"},
		{Interface: "Element", Method: "hasAttribute"},
		// The tag-count walk calls getElementsByTagName on <body>; our
		// runtime names the concrete interface where the paper's Table 9
		// reports the base Element interface.
		{Interface: "HTMLBodyElement", Method: "getElementsByTagName"},
		{Interface: "HTMLBodyElement", Method: "insertBefore"},
		{Interface: "HTMLCollection", Method: "item"},
	}
	have := make(map[measure.Trace]bool, len(traces))
	for _, tr := range traces {
		have[measure.Trace{Interface: tr.Interface, Method: tr.Method}] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("Table 9 row missing: %s.%s (have %+v)", w.Interface, w.Method, traces)
		}
	}
}

func TestBaselineShellSpec(t *testing.T) {
	s := BaselineShellSpec()
	if s.Dynamic.LinkOpens != corpus.LinkWebView || s.Dynamic.Injection != corpus.InjectNone {
		t.Errorf("baseline spec = %+v", s.Dynamic)
	}
}
