package core

import (
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/sdkindex"
	"repro/internal/urlextract"
)

// StaticEndpoints runs the interprocedural URL extractor over each spec's
// built APK and returns the endpoints keyed by package — the static half of
// the static↔dynamic cross-validation (§3.2 deep probes supply the dynamic
// half as observed network-log hosts). Broken builds and analyses yield no
// entry; a nil index uses the built-in SDK catalog.
func StaticEndpoints(specs []*corpus.Spec, idx *sdkindex.Index) (map[string][]urlextract.Endpoint, error) {
	ex := urlextract.New(urlextract.Config{})
	out := make(map[string][]urlextract.Endpoint, len(specs))
	for _, s := range specs {
		if s.Broken {
			continue
		}
		img, err := corpus.BuildAPK(s)
		if err != nil {
			return nil, err
		}
		an, err := pipeline.AnalyzeAndExtract(idx, nil, ex, img)
		if err != nil {
			return nil, err
		}
		if an.Broken {
			continue
		}
		out[s.Package] = an.Endpoints
	}
	return out, nil
}
