package core

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/jsvm"
)

// BenchmarkIABProbeCPU measures one full §3.2.2 dynamic-harness pass —
// every named IAB app visiting the controlled page and executing its
// probe scripts — under each jsvm engine. Unlike the crawler benches
// (wait-dominated by design), this path is pure CPU, so the engine pair
// is the crawl-CPU before/after BENCH_dynamic.json records.
func BenchmarkIABProbeCPU(b *testing.B) {
	var specs []*corpus.Spec
	for _, n := range corpus.NamedApps {
		specs = append(specs, &corpus.Spec{
			Package: n.Package, Title: n.Title, Downloads: n.Downloads,
			OnPlayStore: true, Dynamic: n.Dynamic,
		})
	}
	for _, eng := range []jsvm.Engine{jsvm.EngineBytecode, jsvm.EngineAST} {
		b.Run(eng.String(), func(b *testing.B) {
			prev := jsvm.DefaultEngine()
			jsvm.SetDefaultEngine(eng)
			defer jsvm.SetDefaultEngine(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				study := NewDynamicStudy()
				if _, _, err := study.ProbeIABs(context.Background(), specs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
