// Package core is the public face of the reproduction: it composes the
// substrate packages into the paper's two studies.
//
//   - StaticStudy (§3.1): the large-scale Figure-1 pipeline over an APK
//     repository and a store-metadata source, producing the aggregates
//     behind Tables 2, 3, 4, 5, 7 and Figures 3, 4.
//   - DynamicStudy (§3.2): the semi-manual top-1K analysis on a simulated
//     device — hyperlink-behaviour classification (Table 6), WebView-IAB
//     instrumentation (Tables 8 and 9), and the top-site crawl (Figure 6).
//
// The package re-exports the result types callers need, so examples and
// tools depend on core alone.
package core

import (
	"context"
	"time"

	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/resultcache"
	"repro/internal/retry"
	"repro/internal/sdkindex"
	"repro/internal/telemetry"
	"repro/internal/urlextract"
	"repro/internal/webviewlint"
)

// StaticConfig parameterises the static study.
type StaticConfig struct {
	// MinDownloads and UpdatedAfter define the app-selection filter
	// (§3.1.1). Zero values use the paper's: 100K downloads, 2021-01-01.
	MinDownloads int64
	UpdatedAfter time.Time
	// Workers bounds analysis concurrency (0 = GOMAXPROCS).
	Workers int
	// Index labels SDK packages (nil = the built-in catalog).
	Index *sdkindex.Index
	// Cache, when non-nil, memoises per-APK analyses by content digest so
	// repeated runs over an unchanged corpus skip download-side CPU work.
	Cache *resultcache.Cache[pipeline.Analysis]
	// Lint enables the WebView misconfiguration lint stage; LintRules
	// restricts it to the named rule IDs (nil = every registry rule).
	Lint      bool
	LintRules []string
	// URLs enables the interprocedural URL-extraction stage: per-app static
	// endpoints appear on AppResult.Endpoints and feed the static↔dynamic
	// agreement report.
	URLs bool
	// Retry, when non-nil, wraps the pipeline's network edges (snapshot
	// listing, metadata fetch, APK download) in retries with backoff.
	Retry *retry.Policy
	// MaxFailureFrac is the error budget: the fraction of snapshot packages
	// that may be quarantined after retries before the run aborts (0 =
	// abort on the first unrecovered failure).
	MaxFailureFrac float64
	// Journal, when non-nil, checkpoints completed packages so an
	// interrupted run can resume without repeating finished work.
	Journal *pipeline.Journal
	// Telemetry, when non-nil, receives the pipeline's per-stage counters,
	// latency histograms, cache/retry/journal events and — if the hub has
	// tracing enabled — one trace per APK.
	Telemetry *telemetry.Hub
}

// StaticStudy runs the large-scale static analysis.
type StaticStudy struct {
	pipe *pipeline.Pipeline
}

// StaticResult bundles the raw per-app results with their aggregates.
type StaticResult struct {
	Funnel     pipeline.Funnel
	Apps       []pipeline.AppResult
	Aggregates *pipeline.Aggregates
	// Quarantined lists packages abandoned after retries (empty on a clean
	// run); the run completed degraded but within its error budget.
	Quarantined []pipeline.Quarantine
	// Stats reports per-stage wall time, throughput, cache effectiveness
	// and the peak number of APK bytes held in flight.
	Stats pipeline.Stats
}

// NewStaticStudy wires the pipeline over the given services. It returns an
// error only for an invalid lint configuration (an unknown rule ID).
func NewStaticStudy(repo pipeline.Repository, meta pipeline.MetadataSource, cfg StaticConfig) (*StaticStudy, error) {
	if cfg.MinDownloads == 0 {
		cfg.MinDownloads = corpus.MinDownloads
	}
	if cfg.UpdatedAfter.IsZero() {
		cfg.UpdatedAfter = corpus.UpdateCutoff
	}
	var lint *webviewlint.Analyzer
	if cfg.Lint || cfg.LintRules != nil {
		var err error
		if lint, err = webviewlint.New(webviewlint.Config{Rules: cfg.LintRules}); err != nil {
			return nil, err
		}
	}
	var urls *urlextract.Extractor
	if cfg.URLs {
		urls = urlextract.New(urlextract.Config{})
	}
	return &StaticStudy{
		pipe: pipeline.New(repo, meta, pipeline.Config{
			MinDownloads:   cfg.MinDownloads,
			UpdatedAfter:   cfg.UpdatedAfter,
			Workers:        cfg.Workers,
			Index:          cfg.Index,
			Cache:          cfg.Cache,
			Lint:           lint,
			URLs:           urls,
			Retry:          cfg.Retry,
			MaxFailureFrac: cfg.MaxFailureFrac,
			Journal:        cfg.Journal,
			Telemetry:      cfg.Telemetry,
		}),
	}, nil
}

// Run executes the study.
func (s *StaticStudy) Run(ctx context.Context) (*StaticResult, error) {
	res, err := s.pipe.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &StaticResult{
		Funnel:      res.Funnel,
		Apps:        res.Apps,
		Aggregates:  pipeline.Aggregate(res),
		Quarantined: res.Quarantined,
		Stats:       res.Stats,
	}, nil
}
