package crawler

import (
	"strings"
	"testing"

	"repro/internal/adb"
	"repro/internal/corpus"
	"repro/internal/crux"
	"repro/internal/device"
	"repro/internal/internet"
	"repro/internal/sitereview"
)

// harness boots a device with crawl sites, installs IAB apps, and starts
// an ADB server + client — the full §3.2.2 measurement rig.
func harness(t *testing.T, rateLimit int) (*adb.Client, []crux.Site, *device.Device) {
	t.Helper()
	net := internet.New()
	sites := crux.TopSites(10)
	crux.RegisterAll(net, sites)
	dev := device.New(net)

	install := func(pkg string, dyn corpus.Dynamic) {
		if _, err := dev.Install(&corpus.Spec{Package: pkg, OnPlayStore: true, Dynamic: dyn}); err != nil {
			t.Fatalf("install %s: %v", pkg, err)
		}
	}
	install("com.linkedin.android", corpus.Dynamic{
		HasUserContent: true, LinkSurface: "Post",
		LinkOpens: corpus.LinkWebView, Injection: corpus.InjectRadar,
	})
	install("kik.android", corpus.Dynamic{
		HasUserContent: true, LinkSurface: "DM",
		LinkOpens: corpus.LinkWebView, Injection: corpus.InjectAdsMulti,
	})
	install("org.chromium.webview_shell", corpus.Dynamic{
		HasUserContent: true, LinkSurface: "Bar",
		LinkOpens: corpus.LinkWebView, Injection: corpus.InjectNone,
	})

	srv := adb.NewServer(dev)
	if rateLimit > 0 {
		srv.RateLimits = map[string]int{"kik.android": rateLimit}
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := adb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, sites, dev
}

func TestCrawlCollectsEndpoints(t *testing.T) {
	client, sites, _ := harness(t, 0)
	c := New(client, Config{
		Apps:  []string{"com.linkedin.android", "kik.android", "org.chromium.webview_shell"},
		Sites: sites,
		OwnDomains: map[string][]string{
			"com.linkedin.android": {"linkedin.com", "licdn.com"},
		},
	})
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures: %v", res.Failures)
	}
	if len(res.Visits) != 3*len(sites) {
		t.Fatalf("visits = %d, want %d", len(res.Visits), 3*len(sites))
	}

	// The baseline shell contacts no external endpoints: its IAB injects
	// nothing.
	for _, v := range res.Visits {
		if v.App == "org.chromium.webview_shell" && len(v.ExternalHosts) != 0 {
			t.Errorf("baseline shell contacted %v on %s", v.ExternalHosts, v.Site.Host)
		}
	}

	// LinkedIn contacts trackers (Cedexis) plus its own services.
	liNews := avgKind(res, "com.linkedin.android", "News", sitereview.Tracker)
	if liNews < 2 {
		t.Errorf("LinkedIn tracker endpoints on News = %.1f, want > 2", liNews)
	}
	own := avgKind(res, "com.linkedin.android", "News", sitereview.OwnService)
	if own < 1 {
		t.Errorf("LinkedIn own-service endpoints = %.1f, want >= 1", own)
	}

	// Kik contacts many ad networks on rich content, fewer on Search.
	kikRich := res.TotalAverage("kik.android", "News")
	kikSearch := res.TotalAverage("kik.android", "Search")
	if kikRich < 15 {
		t.Errorf("Kik endpoints on News = %.1f, want > 15", kikRich)
	}
	if kikSearch >= kikRich {
		t.Errorf("Kik Search (%.1f) >= News (%.1f); richness gradient missing", kikSearch, kikRich)
	}
}

func avgKind(res *Result, app, category string, kind sitereview.Kind) float64 {
	m := res.AverageEndpoints(app)
	if m[category] == nil {
		return 0
	}
	return m[category][kind]
}

func TestCrawlRecoversFromRateLimit(t *testing.T) {
	client, sites, _ := harness(t, 3) // Kik account restricted every 3 clicks
	c := New(client, Config{
		Apps:  []string{"kik.android"},
		Sites: sites,
	})
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures: %v", res.Failures)
	}
	if len(res.Visits) != len(sites) {
		t.Errorf("visits = %d, want %d", len(res.Visits), len(sites))
	}
	// 10 visits with a 3-click budget: at least 2 account replacements
	// (the paper needed 2 for Facebook).
	if res.AccountResets["kik.android"] < 2 {
		t.Errorf("account resets = %d, want >= 2", res.AccountResets["kik.android"])
	}
}

func TestCrawlReportsLaunchFailure(t *testing.T) {
	client, sites, _ := harness(t, 0)
	c := New(client, Config{Apps: []string{"com.not.installed"}, Sites: sites[:1]})
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "launch") {
		t.Errorf("failures = %v", res.Failures)
	}
}

func TestADBProtocolErrors(t *testing.T) {
	client, _, _ := harness(t, 0)
	if _, err := client.Command("bogus-command"); err == nil {
		t.Error("bogus command accepted")
	}
	if _, err := client.Command("click", "com.linkedin.android", "https://x/"); err == nil {
		t.Error("click before launch accepted")
	}
	if _, err := client.Command("wait", "notanumber"); err == nil {
		t.Error("bad wait accepted")
	}
}

func TestADBNetlogQueries(t *testing.T) {
	client, sites, dev := harness(t, 0)
	if _, err := client.Command("launch", "com.linkedin.android"); err != nil {
		t.Fatal(err)
	}
	url := "https://" + sites[0].Host + "/"
	if _, err := client.Command("post", "com.linkedin.android", url); err != nil {
		t.Fatal(err)
	}
	payload, err := client.Command("click", "com.linkedin.android", url)
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Fields(payload)
	if len(parts) != 2 || parts[0] != "webview" {
		t.Fatalf("click payload = %q", payload)
	}
	hosts, err := client.List("netlog", parts[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) == 0 {
		t.Error("no hosts recorded")
	}
	if _, err := client.Command("purge-netlog"); err != nil {
		t.Fatal(err)
	}
	if dev.NetLog.Len() != 0 {
		t.Error("purge-netlog did not clear the device log")
	}
}
