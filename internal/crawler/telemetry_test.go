package crawler

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// crawlTelemetry runs one crawl over a 2-device farm with the given worker
// count and returns the canonical metrics JSON and trace JSONL. The farm
// size is held constant across calls: device labels derive from the lane →
// device pinning, so only an identical farm can produce identical series.
func crawlTelemetry(t *testing.T, workers int) (metrics, trace string) {
	t.Helper()
	hub := telemetry.New(telemetry.Options{Timing: telemetry.SeededTiming{Seed: 5}, Tracing: true})
	farm, sites := fleetHarnessHub(t, 2, 3, 0, hub)
	cfg := crawlConfig(sites, workers)
	cfg.Telemetry = hub
	if _, err := NewFleet(farm.Clients, cfg).Run(); err != nil {
		t.Fatalf("Run (workers=%d): %v", workers, err)
	}
	var mb, tb bytes.Buffer
	if err := hub.Registry().WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	if err := hub.Tracer().WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	return mb.String(), tb.String()
}

// TestCrawlTelemetryScheduleIndependent crawls the same sites over the
// same 2-device farm sequentially and with 4 workers: visit counters,
// latency histograms, per-device command totals and the per-visit traces
// must be byte-identical — the crawl's schedule leaves no telemetry
// residue.
func TestCrawlTelemetryScheduleIndependent(t *testing.T) {
	seqMetrics, seqTrace := crawlTelemetry(t, 1)
	parMetrics, parTrace := crawlTelemetry(t, 4)
	if seqMetrics != parMetrics {
		t.Errorf("metrics diverge between workers=1 and workers=4:\n--- seq ---\n%s\n--- par ---\n%s", seqMetrics, parMetrics)
	}
	if seqTrace != parTrace {
		t.Errorf("traces diverge between workers=1 and workers=4")
	}

	// The families the smoke job asserts over must be present and hot.
	for _, fam := range []string{
		"crawl_visits_total", "crawl_visit_latency_seconds",
		"adb_commands_total", "netlog_purges_total",
	} {
		if !strings.Contains(seqMetrics, `"name": "`+fam+`"`) {
			t.Errorf("family %s missing from snapshot", fam)
		}
	}
}
