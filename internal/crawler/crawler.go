// Package crawler drives the top-site crawl of §3.2.2: for each app and
// each site, it launches the app over ADB, inserts the crawl URL into the
// app's link surface, taps it so the visit happens inside the app's IAB,
// scrolls to the page end, waits for resources, collects the per-context
// network log, and purges device logs before the next visit. Rate limits
// (the Facebook account restrictions the paper hit) are detected and
// recovered by provisioning a fresh dummy account.
package crawler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adb"
	"repro/internal/crux"
	"repro/internal/sitereview"
)

// Visit is one (app, site) crawl outcome.
type Visit struct {
	App           string
	Site          crux.Site
	Mode          string // "webview", "customtab", "browser"
	Context       string
	ExternalHosts []string
	// EndpointKinds histograms ExternalHosts by sitereview kind.
	EndpointKinds map[sitereview.Kind]int
}

// Result aggregates a crawl.
type Result struct {
	Visits []Visit
	// AccountResets counts dummy-account replacements per app.
	AccountResets map[string]int
	// Failures records visits that could not be completed.
	Failures []string
}

// AverageEndpoints returns, for one app, the mean number of distinct
// external endpoints of each kind per site category — the Figure 6 series.
func (r *Result) AverageEndpoints(app string) map[string]map[sitereview.Kind]float64 {
	sum := make(map[string]map[sitereview.Kind]float64)
	count := make(map[string]int)
	for _, v := range r.Visits {
		if v.App != app {
			continue
		}
		count[v.Site.Category]++
		m := sum[v.Site.Category]
		if m == nil {
			m = make(map[sitereview.Kind]float64)
			sum[v.Site.Category] = m
		}
		for kind, n := range v.EndpointKinds {
			m[kind] += float64(n)
		}
	}
	for cat, m := range sum {
		for kind := range m {
			m[kind] /= float64(count[cat])
		}
	}
	return sum
}

// TotalAverage returns the mean distinct external endpoints per visit for
// one app and site category.
func (r *Result) TotalAverage(app, category string) float64 {
	total, n := 0, 0
	for _, v := range r.Visits {
		if v.App == app && v.Site.Category == category {
			total += len(v.ExternalHosts)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Config parameterises a crawl.
type Config struct {
	// Apps are the app packages to crawl with (the 10 IABs + baseline).
	Apps []string
	// Sites are the crawl targets.
	Sites []crux.Site
	// OwnDomains maps app package -> its own service domains, for
	// endpoint classification.
	OwnDomains map[string][]string
	// MaxAccountResets bounds rate-limit recovery per app.
	MaxAccountResets int
}

// Crawler executes crawls over an ADB connection.
type Crawler struct {
	client *adb.Client
	cfg    Config
}

// New builds a crawler.
func New(client *adb.Client, cfg Config) *Crawler {
	if cfg.MaxAccountResets == 0 {
		cfg.MaxAccountResets = 5
	}
	return &Crawler{client: client, cfg: cfg}
}

// Run performs the full crawl: every app visits every site.
func (c *Crawler) Run() (*Result, error) {
	res := &Result{AccountResets: make(map[string]int)}
	for _, app := range c.cfg.Apps {
		if _, err := c.client.Command("launch", app); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: launch: %v", app, err))
			continue
		}
		for _, site := range c.cfg.Sites {
			visit, err := c.visit(app, site, res)
			if err != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("%s @ %s: %v", app, site.Host, err))
				continue
			}
			res.Visits = append(res.Visits, *visit)
		}
		if _, err := c.client.Command("force-stop", app); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (c *Crawler) visit(app string, site crux.Site, res *Result) (*Visit, error) {
	url := "https://" + site.Host + "/"
	// (i) launch happened; (ii) navigate to the surface and (iii) insert
	// the crawl URL.
	if _, err := c.client.Command("post", app, url); err != nil {
		return nil, err
	}
	// (iv) tap the URL, recovering from account restrictions.
	var payload string
	var err error
	for attempt := 0; ; attempt++ {
		payload, err = c.client.Command("click", app, url)
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "rate-limited") || res.AccountResets[app] >= c.cfg.MaxAccountResets {
			return nil, err
		}
		// Manual intervention in the paper: create a new dummy account.
		if _, rerr := c.client.Command("newaccount", app); rerr != nil {
			return nil, rerr
		}
		res.AccountResets[app]++
	}
	parts := strings.Fields(payload)
	if len(parts) < 1 {
		return nil, fmt.Errorf("crawler: malformed click payload %q", payload)
	}
	mode := parts[0]
	ctx := ""
	if len(parts) > 1 {
		ctx = parts[1]
	}

	// (v) scroll to the end and allow the page to settle.
	if _, err := c.client.Command("input", "swipe", "500", "1500", "500", "300"); err != nil {
		return nil, err
	}
	if _, err := c.client.Command("wait", "20000"); err != nil {
		return nil, err
	}

	visit := &Visit{App: app, Site: site, Mode: mode, Context: ctx}
	if ctx != "" {
		hosts, err := c.client.List("netlog-external", ctx, site.Host)
		if err != nil {
			return nil, err
		}
		sort.Strings(hosts)
		visit.ExternalHosts = hosts
		visit.EndpointKinds = sitereview.Histogram(hosts, c.cfg.OwnDomains[app])
	}

	// Ready the device for the next crawl: purge logs, pause.
	if _, err := c.client.Command("purge-netlog"); err != nil {
		return nil, err
	}
	if _, err := c.client.Command("logcat-clear"); err != nil {
		return nil, err
	}
	if _, err := c.client.Command("wait", "60000"); err != nil {
		return nil, err
	}
	return visit, nil
}
