// Package crawler drives the top-site crawl of §3.2.2: for each app and
// each site, it launches the app over ADB, inserts the crawl URL into the
// app's link surface, taps it so the visit happens inside the app's IAB,
// scrolls to the page end, waits for resources, collects the per-context
// network log, and purges device logs before the next visit. Rate limits
// (the Facebook account restrictions the paper hit) are detected and
// recovered by provisioning a fresh dummy account.
//
// The crawl is scheduled as one ordered lane per app: visits within a lane
// run strictly in site order (rate-limit and dummy-account state is
// per-app and order-dependent), while a worker pool bounds how many visits
// are in flight across lanes. Each lane is pinned to one device client, so
// a multi-device farm splits the lanes across handsets. Results merge in
// canonical (app, site-rank) order, making the parallel crawl's output
// byte-identical to the sequential one.
package crawler

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/adb"
	"repro/internal/crux"
	"repro/internal/sitereview"
	"repro/internal/telemetry"
)

// Visit is one (app, site) crawl outcome.
type Visit struct {
	App     string
	Site    crux.Site
	Mode    string // "webview", "customtab", "browser"
	Context string
	// ExternalHosts are the distinct external endpoints the visit
	// contacted, sorted and deduplicated at visit construction.
	ExternalHosts []string
	// EndpointKinds histograms ExternalHosts by sitereview kind.
	EndpointKinds map[sitereview.Kind]int
}

// Result aggregates a crawl.
type Result struct {
	Visits []Visit
	// AccountResets counts dummy-account replacements per app.
	AccountResets map[string]int
	// Failures records visits that could not be completed, in canonical
	// (app, site-rank) order regardless of how the crawl was scheduled.
	Failures []string
}

// AverageEndpoints returns, for one app, the mean number of distinct
// external endpoints of each kind per site category — the Figure 6 series.
func (r *Result) AverageEndpoints(app string) map[string]map[sitereview.Kind]float64 {
	sum := make(map[string]map[sitereview.Kind]float64)
	count := make(map[string]int)
	for _, v := range r.Visits {
		if v.App != app {
			continue
		}
		count[v.Site.Category]++
		m := sum[v.Site.Category]
		if m == nil {
			m = make(map[sitereview.Kind]float64)
			sum[v.Site.Category] = m
		}
		for kind, n := range v.EndpointKinds {
			m[kind] += float64(n)
		}
	}
	for cat, m := range sum {
		for kind := range m {
			m[kind] /= float64(count[cat])
		}
	}
	return sum
}

// TotalAverage returns the mean distinct external endpoints per visit for
// one app and site category.
func (r *Result) TotalAverage(app, category string) float64 {
	total, n := 0, 0
	for _, v := range r.Visits {
		if v.App == app && v.Site.Category == category {
			total += len(v.ExternalHosts)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Config parameterises a crawl.
type Config struct {
	// Apps are the app packages to crawl with (the 10 IABs + baseline).
	// One scheduling lane is created per app.
	Apps []string
	// Sites are the crawl targets, visited in order within each lane.
	Sites []crux.Site
	// OwnDomains maps app package -> its own service domains, for
	// endpoint classification.
	OwnDomains map[string][]string
	// MaxAccountResets bounds rate-limit recovery per app.
	MaxAccountResets int
	// Workers bounds how many visits may be in flight at once across all
	// lanes (0 = one per lane). Workers 1 with a single client reproduces
	// the paper's strictly sequential crawl.
	Workers int
	// Telemetry, when non-nil, receives per-app visit counters and latency
	// histograms, per-device in-flight gauges, and — if the hub has tracing
	// enabled — one trace per visit reconstructing its
	// post→click→pageload→netlog→cleanup path. The emitted totals are
	// schedule-independent: a sequential and a parallel crawl over the same
	// farm produce identical snapshots.
	Telemetry *telemetry.Hub
}

// Crawler executes crawls over one or more ADB connections.
type Crawler struct {
	clients []*adb.Client
	cfg     Config
}

// New builds a crawler over a single device connection.
func New(client *adb.Client, cfg Config) *Crawler {
	return NewFleet([]*adb.Client{client}, cfg)
}

// NewFleet builds a crawler over a fleet of device connections (typically
// adb.Farm clients, one per simulated handset). Lane i is pinned to
// clients[i mod len(clients)] for the whole crawl, so an app's rate-limit
// and account state stays on one device.
func NewFleet(clients []*adb.Client, cfg Config) *Crawler {
	if len(clients) == 0 {
		panic("crawler: NewFleet needs at least one client")
	}
	if cfg.MaxAccountResets == 0 {
		cfg.MaxAccountResets = 5
	}
	return &Crawler{clients: clients, cfg: cfg}
}

// laneOutcome carries one app lane's results until the canonical merge.
type laneOutcome struct {
	visits        []Visit
	failures      []string
	accountResets int
	err           error
}

// Run performs the full crawl: every app visits every site. With Workers
// <= 1 and a single client the lanes run one after another (the
// sequential crawl); otherwise lanes run concurrently under the worker
// pool. Either way the merged result is identical.
func (c *Crawler) Run() (*Result, error) {
	lanes := make([]laneOutcome, len(c.cfg.Apps))
	if c.cfg.Workers <= 1 && len(c.clients) == 1 {
		for i, app := range c.cfg.Apps {
			lanes[i] = c.runLane(i, app, nil)
		}
	} else {
		workers := c.cfg.Workers
		if workers <= 0 {
			workers = len(c.cfg.Apps)
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, app := range c.cfg.Apps {
			wg.Add(1)
			go func(i int, app string) {
				defer wg.Done()
				lanes[i] = c.runLane(i, app, sem)
			}(i, app)
		}
		wg.Wait()
	}

	// Canonical merge: lanes in Config.Apps order, visits and failures
	// already in site order within each lane. A lane error aborts the run
	// deterministically (lowest lane index wins).
	res := &Result{AccountResets: make(map[string]int)}
	for i := range lanes {
		lo := &lanes[i]
		if lo.err != nil {
			return nil, lo.err
		}
		res.Visits = append(res.Visits, lo.visits...)
		res.Failures = append(res.Failures, lo.failures...)
		if lo.accountResets > 0 {
			res.AccountResets[c.cfg.Apps[i]] += lo.accountResets
		}
	}
	return res, nil
}

// runLane crawls every site with one app on its pinned client. sem, when
// non-nil, is the crawl-wide worker pool: a token is held for the duration
// of each visit.
func (c *Crawler) runLane(idx int, app string, sem chan struct{}) laneOutcome {
	client := c.clients[idx%len(c.clients)]
	hub := c.cfg.Telemetry
	device := "device" + strconv.Itoa(idx%len(c.clients))
	inflight := hub.Gauge("device_lane_inflight", "visits currently executing, by device", "device", device)
	visitLat := hub.Histogram("crawl_visit_latency_seconds", "end-to-end visit latency, by app", nil, "app", app)
	visits := func(outcome string) *telemetry.Counter {
		return hub.Counter("crawl_visits_total", "crawl visits by app and outcome", "app", app, "outcome", outcome)
	}
	visitsOK, visitsFailed := visits("ok"), visits("failed")

	var lo laneOutcome
	if _, err := client.Command("launch", app); err != nil {
		lo.failures = append(lo.failures, fmt.Sprintf("%s: launch: %v", app, err))
		hub.Counter("crawl_launch_failures_total", "app launches that failed, by app", "app", app).Inc()
		return lo
	}
	for _, site := range c.cfg.Sites {
		if sem != nil {
			sem <- struct{}{}
		}
		inflight.Add(1)
		tm := hub.Timer(app+"/"+site.Host, "visit")
		visit, err := c.visit(client, device, app, site, &lo)
		tm.ObserveInto(visitLat)
		inflight.Add(-1)
		if sem != nil {
			<-sem
		}
		if err != nil {
			visitsFailed.Inc()
			lo.failures = append(lo.failures, fmt.Sprintf("%s @ %s: %v", app, site.Host, err))
			continue
		}
		visitsOK.Inc()
		lo.visits = append(lo.visits, *visit)
	}
	if _, err := client.Command("force-stop", app); err != nil {
		lo.err = err
	}
	return lo
}

func (c *Crawler) visit(client *adb.Client, device, app string, site crux.Site, lo *laneOutcome) (*Visit, error) {
	hub := c.cfg.Telemetry
	tr := hub.Trace("visit:" + app + "/" + site.Host)
	root := tr.Start("visit", "app", app, "site", site.Host, "device", device)
	defer root.End()

	url := "https://" + site.Host + "/"
	// (i) launch happened; (ii) navigate to the surface and (iii) insert
	// the crawl URL.
	sp := tr.Child("visit", "post")
	_, err := client.Command("post", app, url)
	sp.End()
	if err != nil {
		return nil, err
	}
	// (iv) tap the URL, recovering from account restrictions.
	sp = tr.Child("visit", "click")
	var payload string
	resets := 0
	for {
		payload, err = client.Command("click", app, url)
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "rate-limited") || lo.accountResets >= c.cfg.MaxAccountResets {
			sp.End()
			return nil, err
		}
		// Manual intervention in the paper: create a new dummy account.
		if _, rerr := client.Command("newaccount", app); rerr != nil {
			sp.End()
			return nil, rerr
		}
		lo.accountResets++
		resets++
		hub.Counter("crawl_account_resets_total", "dummy-account replacements after rate limits, by app", "app", app).Inc()
	}
	if resets > 0 {
		sp.SetAttr("account_resets", strconv.Itoa(resets))
	}
	sp.End()
	parts := strings.Fields(payload)
	if len(parts) < 1 {
		return nil, fmt.Errorf("crawler: malformed click payload %q", payload)
	}
	mode := parts[0]
	ctx := ""
	if len(parts) > 1 {
		ctx = parts[1]
	}
	root.SetAttr("mode", mode)

	// (v) scroll to the end and allow the page to settle.
	sp = tr.Child("visit", "pageload")
	if _, err := client.Command("input", "swipe", "500", "1500", "500", "300"); err != nil {
		sp.End()
		return nil, err
	}
	if _, err := client.Command("wait", "20000"); err != nil {
		sp.End()
		return nil, err
	}
	sp.End()

	visit := &Visit{App: app, Site: site, Mode: mode, Context: ctx}
	if ctx != "" {
		sp = tr.Child("visit", "netlog")
		hosts, err := client.List("netlog-external", ctx, site.Host)
		if err != nil {
			sp.End()
			return nil, err
		}
		// Sorted + deduplicated once here; every aggregation downstream
		// (histograms, averages) consumes the canonical list.
		visit.ExternalHosts = sortDedupe(hosts)
		visit.EndpointKinds = sitereview.Histogram(visit.ExternalHosts, c.cfg.OwnDomains[app])
		sp.SetAttr("external_hosts", strconv.Itoa(len(visit.ExternalHosts)))
		sp.End()
	}

	// Ready the device for the next crawl: purge this visit's log slice
	// (never another lane's in-flight context), clear logcat, pause.
	sp = tr.Child("visit", "cleanup")
	defer sp.End()
	if ctx != "" {
		if _, err := client.Command("purge-netlog", ctx); err != nil {
			return nil, err
		}
	} else if _, err := client.Command("purge-netlog"); err != nil {
		return nil, err
	}
	if _, err := client.Command("logcat-clear"); err != nil {
		return nil, err
	}
	if _, err := client.Command("wait", "60000"); err != nil {
		return nil, err
	}
	return visit, nil
}

// sortDedupe canonicalises a host list in place: sorted, distinct.
func sortDedupe(hosts []string) []string {
	sort.Strings(hosts)
	out := hosts[:0]
	for i, h := range hosts {
		if i == 0 || h != hosts[i-1] {
			out = append(out, h)
		}
	}
	return out
}
