package crawler

import (
	"testing"

	"repro/internal/crux"
	"repro/internal/sitereview"
)

func visitFor(app, host, category string, kinds map[sitereview.Kind]int) Visit {
	return Visit{
		App:           app,
		Site:          crux.Site{Host: host, Category: category},
		EndpointKinds: kinds,
	}
}

func TestAverageEndpointsTableDriven(t *testing.T) {
	tests := []struct {
		name   string
		visits []Visit
		app    string
		want   map[string]map[sitereview.Kind]float64
	}{
		{
			name:   "zero visits",
			visits: nil,
			app:    "com.example",
			want:   map[string]map[sitereview.Kind]float64{},
		},
		{
			name: "app with no visits of its own",
			visits: []Visit{
				visitFor("other.app", "a.com", "News", map[sitereview.Kind]int{sitereview.Tracker: 2}),
			},
			app:  "com.example",
			want: map[string]map[sitereview.Kind]float64{},
		},
		{
			name: "single-category crawl averages across its visits",
			visits: []Visit{
				visitFor("com.example", "a.com", "News", map[sitereview.Kind]int{sitereview.Tracker: 2, sitereview.AdNetwork: 4}),
				visitFor("com.example", "b.com", "News", map[sitereview.Kind]int{sitereview.Tracker: 4}),
			},
			app: "com.example",
			want: map[string]map[sitereview.Kind]float64{
				"News": {sitereview.Tracker: 3, sitereview.AdNetwork: 2},
			},
		},
		{
			name: "categories average independently and ignore other apps",
			visits: []Visit{
				visitFor("com.example", "a.com", "News", map[sitereview.Kind]int{sitereview.AdNetwork: 6}),
				visitFor("com.example", "b.com", "Search", map[sitereview.Kind]int{sitereview.AdNetwork: 1}),
				visitFor("other.app", "a.com", "News", map[sitereview.Kind]int{sitereview.AdNetwork: 100}),
			},
			app: "com.example",
			want: map[string]map[sitereview.Kind]float64{
				"News":   {sitereview.AdNetwork: 6},
				"Search": {sitereview.AdNetwork: 1},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := &Result{Visits: tt.visits}
			got := res.AverageEndpoints(tt.app)
			if len(got) != len(tt.want) {
				t.Fatalf("categories = %d, want %d (%v)", len(got), len(tt.want), got)
			}
			for cat, kinds := range tt.want {
				for kind, want := range kinds {
					if got[cat][kind] != want {
						t.Errorf("%s/%v = %v, want %v", cat, kind, got[cat][kind], want)
					}
				}
			}
		})
	}
}

func TestSortDedupe(t *testing.T) {
	tests := []struct {
		in, want []string
	}{
		{nil, nil},
		{[]string{"b", "a", "b", "a", "c"}, []string{"a", "b", "c"}},
		{[]string{"x"}, []string{"x"}},
		{[]string{"x", "x", "x"}, []string{"x"}},
	}
	for _, tt := range tests {
		got := sortDedupe(append([]string(nil), tt.in...))
		if len(got) != len(tt.want) {
			t.Fatalf("sortDedupe(%v) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("sortDedupe(%v) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}
