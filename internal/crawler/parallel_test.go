package crawler

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/adb"
	"repro/internal/corpus"
	"repro/internal/crux"
	"repro/internal/device"
	"repro/internal/internet"
	"repro/internal/telemetry"
)

// crawlApps is the app set the parallel tests crawl with.
var crawlApps = []string{"com.linkedin.android", "kik.android", "org.chromium.webview_shell"}

// fleetHarness boots n devices with crawl sites and IAB apps behind an ADB
// farm — the multi-device §3.2.2 rig.
func fleetHarness(tb testing.TB, devices, rateLimit int, waitScale float64) (*adb.Farm, []crux.Site) {
	return fleetHarnessHub(tb, devices, rateLimit, waitScale, nil)
}

// fleetHarnessHub is fleetHarness with a telemetry hub installed on every
// farm server.
func fleetHarnessHub(tb testing.TB, devices, rateLimit int, waitScale float64, hub *telemetry.Hub) (*adb.Farm, []crux.Site) {
	tb.Helper()
	net := internet.New()
	sites := crux.TopSites(10)
	crux.RegisterAll(net, sites)
	fleet := device.NewFleet(net, devices)

	install := func(pkg string, dyn corpus.Dynamic) {
		if err := fleet.Install(&corpus.Spec{Package: pkg, OnPlayStore: true, Dynamic: dyn}); err != nil {
			tb.Fatalf("install %s: %v", pkg, err)
		}
	}
	install("com.linkedin.android", corpus.Dynamic{
		HasUserContent: true, LinkSurface: "Post",
		LinkOpens: corpus.LinkWebView, Injection: corpus.InjectRadar,
	})
	install("kik.android", corpus.Dynamic{
		HasUserContent: true, LinkSurface: "DM",
		LinkOpens: corpus.LinkWebView, Injection: corpus.InjectAdsMulti,
	})
	install("org.chromium.webview_shell", corpus.Dynamic{
		HasUserContent: true, LinkSurface: "Bar",
		LinkOpens: corpus.LinkWebView, Injection: corpus.InjectNone,
	})

	cfg := adb.FarmConfig{WaitScale: waitScale, Telemetry: hub}
	if rateLimit > 0 {
		cfg.RateLimits = map[string]int{"kik.android": rateLimit}
	}
	farm, err := adb.StartFarm(fleet.Devices, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { farm.Close() })
	return farm, sites
}

func crawlConfig(sites []crux.Site, workers int) Config {
	return Config{
		Apps:  crawlApps,
		Sites: sites,
		OwnDomains: map[string][]string{
			"com.linkedin.android": {"linkedin.com", "licdn.com"},
		},
		Workers: workers,
	}
}

// TestParallelCrawlMatchesSequential is the tentpole determinism check:
// a crawl fanned over 4 workers and 2 devices must produce the exact
// result a sequential single-device crawl does.
func TestParallelCrawlMatchesSequential(t *testing.T) {
	seqFarm, sites := fleetHarness(t, 1, 3, 0)
	seq, err := NewFleet(seqFarm.Clients, crawlConfig(sites, 1)).Run()
	if err != nil {
		t.Fatalf("sequential Run: %v", err)
	}

	parFarm, parSites := fleetHarness(t, 2, 3, 0)
	par, err := NewFleet(parFarm.Clients, crawlConfig(parSites, 4)).Run()
	if err != nil {
		t.Fatalf("parallel Run: %v", err)
	}

	if !reflect.DeepEqual(seq.Visits, par.Visits) {
		t.Errorf("parallel visits diverge from sequential:\nseq: %+v\npar: %+v", seq.Visits, par.Visits)
	}
	if !reflect.DeepEqual(seq.Failures, par.Failures) {
		t.Errorf("failures diverge: seq %v, par %v", seq.Failures, par.Failures)
	}
	if !reflect.DeepEqual(seq.AccountResets, par.AccountResets) {
		t.Errorf("account resets diverge: seq %v, par %v", seq.AccountResets, par.AccountResets)
	}
}

// TestParallelFailuresDeterministicOrder places a failing app between two
// healthy ones and checks failures land in canonical (app, site) order no
// matter how the lanes interleave.
func TestParallelFailuresDeterministicOrder(t *testing.T) {
	farm, sites := fleetHarness(t, 2, 0, 0)
	cfg := crawlConfig(sites, 4)
	cfg.Apps = []string{"com.linkedin.android", "com.not.installed", "kik.android"}
	res, err := NewFleet(farm.Clients, cfg).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "com.not.installed") {
		t.Fatalf("failures = %v", res.Failures)
	}
	if len(res.Visits) != 2*len(sites) {
		t.Errorf("visits = %d, want %d", len(res.Visits), 2*len(sites))
	}
	// The healthy lanes stay in app order around the failed lane.
	if res.Visits[0].App != "com.linkedin.android" || res.Visits[len(sites)].App != "kik.android" {
		t.Errorf("visit order broken: first=%s, mid=%s", res.Visits[0].App, res.Visits[len(sites)].App)
	}
}

// TestExternalHostsDeduplicated asserts the canonicalisation at visit
// construction: sorted, no duplicates.
func TestExternalHostsDeduplicated(t *testing.T) {
	farm, sites := fleetHarness(t, 1, 0, 0)
	res, err := NewFleet(farm.Clients, crawlConfig(sites, 1)).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range res.Visits {
		for i := 1; i < len(v.ExternalHosts); i++ {
			if v.ExternalHosts[i-1] >= v.ExternalHosts[i] {
				t.Fatalf("%s @ %s: hosts not sorted-unique: %v", v.App, v.Site.Host, v.ExternalHosts)
			}
		}
	}
}
