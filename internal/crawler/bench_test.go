package crawler

// Crawl-throughput benchmarks. The real crawl is dominated by fixed waits
// (20 s settle + 60 s pause per visit, §3.2.2); the simulated ADB server
// reproduces that with WaitScale, shrinking each visit's 80 s of waiting
// to 80 ms×scale of real sleeping. BenchmarkCrawlSequential pays the
// waits back-to-back, exactly like the paper's single-device crawl;
// BenchmarkCrawlParallel overlaps them across app lanes and devices —
// the wall-clock ratio is the scheduler's speedup.

import (
	"testing"

	"repro/internal/jsvm"
)

// benchWaitScale makes each visit sleep ~24ms (80s of modelled waiting at
// 3e-4). The scale keeps waiting dominant over the simulator's CPU work —
// as in the real crawl, where the 80s of settling dwarfs everything —
// while keeping the benchmark short.
const benchWaitScale = 3e-4

func benchCrawl(b *testing.B, devices, workers int) {
	benchCrawlScaled(b, devices, workers, benchWaitScale)
}

func benchCrawlScaled(b *testing.B, devices, workers int, waitScale float64) {
	farm, sites := fleetHarness(b, devices, 0, waitScale)
	clients, err := farm.LaneClients(len(crawlApps))
	if err != nil {
		b.Fatal(err)
	}
	cfg := crawlConfig(sites, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := NewFleet(clients, cfg).Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Failures) != 0 {
			b.Fatalf("failures: %v", res.Failures)
		}
		if len(res.Visits) != len(crawlApps)*len(sites) {
			b.Fatalf("visits = %d", len(res.Visits))
		}
	}
}

func BenchmarkCrawlSequential(b *testing.B) { benchCrawl(b, 1, 1) }

func BenchmarkCrawlParallel(b *testing.B) { benchCrawl(b, 2, 4) }

// The CrawlCPU pair disables the modelled waits (WaitScale 0): with no
// sleeping, ns/op is the CPU one full crawl burns, so the two variants
// measure the script engines' contribution to crawl CPU directly —
// the before/after BENCH_dynamic.json records.
func BenchmarkCrawlCPUBytecode(b *testing.B) {
	prev := jsvm.DefaultEngine()
	jsvm.SetDefaultEngine(jsvm.EngineBytecode)
	defer jsvm.SetDefaultEngine(prev)
	benchCrawlScaled(b, 1, 1, 0)
}

func BenchmarkCrawlCPUAST(b *testing.B) {
	prev := jsvm.DefaultEngine()
	jsvm.SetDefaultEngine(jsvm.EngineAST)
	defer jsvm.SetDefaultEngine(prev)
	benchCrawlScaled(b, 1, 1, 0)
}
