package sdkindex

import (
	"strings"
	"testing"
)

func TestCatalogMatchesTable3(t *testing.T) {
	idx := Default()
	got := idx.Counts()
	for cat, want := range Table3() {
		if got[cat] != want {
			t.Errorf("%s: counts = %v, want %v", cat, got[cat], want)
		}
	}
	wv, ct, both := idx.Totals()
	if wv != 125 || ct != 45 || both != 34 {
		t.Errorf("totals = (%d, %d, %d), want (125, 45, 34)", wv, ct, both)
	}
}

func TestCatalogNamedEntries(t *testing.T) {
	idx := Default()
	cases := []struct {
		pkg  string
		name string
		cat  Category
		wv   int
		ct   int
	}{
		{"com.applovin.adview", "AppLovin", Advertising, 27397, 0},
		{"com.facebook.login.widget", "Facebook", Social, 0, 23234},
		{"com.google.firebase.auth.internal", "Google Firebase", Authentication, 0, 7565},
		{"io.flutter.plugins.urllauncher", "Flutter", DevTools, 5568, 0},
		{"com.iab.omid.library", "Open Measurement", Engagement, 11333, 0},
		{"zendesk.core.ui", "Zendesk", UserSupport, 1000, 0},
		{"com.navercorp.nid.oauth", "NAVER", Social, 406, 157},
		{"com.navercorp.nid.identity.login", "NAVER Identity", Authentication, 90, 81},
		{"in.juspay.hypersdk", "Juspay", Payments, 77, 77},
	}
	for _, c := range cases {
		s, ok := idx.Lookup(c.pkg)
		if !ok {
			t.Errorf("Lookup(%q): no match", c.pkg)
			continue
		}
		if s.Name != c.name || s.Category != c.cat || s.WebViewApps != c.wv || s.CTApps != c.ct {
			t.Errorf("Lookup(%q) = %q/%s wv=%d ct=%d, want %q/%s wv=%d ct=%d",
				c.pkg, s.Name, s.Category, s.WebViewApps, s.CTApps, c.name, c.cat, c.wv, c.ct)
		}
	}
}

func TestLookupLongestPrefixWins(t *testing.T) {
	idx := Default()
	// com.navercorp.nid.identity must beat the shorter com.navercorp.nid.
	s, ok := idx.Lookup("com.navercorp.nid.identity")
	if !ok || s.Name != "NAVER Identity" {
		t.Errorf("Lookup = %+v", s)
	}
	// The shorter prefix still matches its own subtree.
	s, ok = idx.Lookup("com.navercorp.nid.oauth.view")
	if !ok || s.Name != "NAVER" {
		t.Errorf("Lookup = %+v", s)
	}
}

func TestLookupUnlabeled(t *testing.T) {
	idx := Default()
	for _, pkg := range []string{"com.example.app", "org.nonexistent", "a"} {
		if s, ok := idx.Lookup(pkg); ok {
			t.Errorf("Lookup(%q) unexpectedly matched %q", pkg, s.Name)
		}
	}
}

func TestGoogleAndroidExcluded(t *testing.T) {
	idx := Default()
	s, ok := idx.Lookup("com.google.android.gms")
	if !ok || !s.Excluded {
		t.Errorf("com.google.android = %+v, want excluded entry", s)
	}
	// Excluded entries must not contribute to the Table 3 matrix.
	wv, ct, _ := idx.Totals()
	if wv != 125 || ct != 45 {
		t.Errorf("excluded entry leaked into totals: (%d, %d)", wv, ct)
	}
}

func TestFillerCountsAboveThreshold(t *testing.T) {
	for _, s := range Catalog() {
		if s.Excluded {
			continue
		}
		if s.UsesWebView() && s.WebViewApps <= 100 && s.CTApps == 0 {
			t.Errorf("%s: WebViewApps = %d, below the >100 package threshold", s.Name, s.WebViewApps)
		}
		if !s.UsesWebView() && !s.UsesCT() {
			t.Errorf("%s: uses neither surface", s.Name)
		}
	}
}

func TestObfuscatedUnknownPackages(t *testing.T) {
	n := 0
	for _, s := range Catalog() {
		if s.Obfuscated {
			if s.Category != Unknown {
				t.Errorf("obfuscated SDK %s in category %s", s.Name, s.Category)
			}
			n++
		}
	}
	if n != 4 {
		t.Errorf("obfuscated packages = %d, want 4", n)
	}
}

func TestUniquePackagePrefixes(t *testing.T) {
	seen := make(map[string]string)
	for _, s := range Catalog() {
		if prev, dup := seen[s.Package]; dup {
			t.Errorf("package %q used by both %q and %q", s.Package, prev, s.Name)
		}
		seen[s.Package] = s.Name
	}
}

func TestPackagesAreWellFormed(t *testing.T) {
	for _, s := range Catalog() {
		if s.Package == "" || strings.HasPrefix(s.Package, ".") || strings.HasSuffix(s.Package, ".") {
			t.Errorf("%s: malformed package %q", s.Name, s.Package)
		}
	}
}

func TestTargetsCoverEveryCategory(t *testing.T) {
	for _, cat := range Categories {
		tg := TargetFor(cat)
		if tg.Category != cat {
			t.Errorf("TargetFor(%s) missing", cat)
		}
	}
	// Spot-check the headline unions.
	if tg := TargetFor(Advertising); tg.WebViewApps != 39163 {
		t.Errorf("Advertising WV union = %d", tg.WebViewApps)
	}
	if tg := TargetFor(Social); tg.CTApps != 23807 {
		t.Errorf("Social CT union = %d", tg.CTApps)
	}
}

func TestByCategory(t *testing.T) {
	idx := Default()
	ads := idx.ByCategory(Advertising)
	if len(ads) != 46 {
		t.Errorf("Advertising SDKs = %d, want 46", len(ads))
	}
	for _, s := range ads {
		if !s.UsesWebView() {
			t.Errorf("ad SDK %s does not use WebViews", s.Name)
		}
	}
}
