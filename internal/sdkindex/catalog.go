package sdkindex

import "fmt"

// The catalog construction below reproduces the paper's SDK landscape. Named
// entries carry the exact app counts of Tables 4 and 5; filler entries pad
// each category to the SDK counts of Table 3:
//
//	Category        WV  CT  both      Category        WV  CT  both
//	Advertising     46   3   3        Authentication   7  10   6
//	Payments        15   6   5        Unknown         10   4   4
//	Dev Tools       11   7   5        Hybrid           6   7   5
//	Engagement      12   0   0        Utility          4   2   2
//	Social          10   6   4        User Support     4   0   0
//	                                  Total          125  45  34
//
// ("Use WebViews"/"Use CT" are inclusive of "both", matching the abstract's
// 125/45/34 phrasing.)

// table3 is the SDK-count matrix the catalog must satisfy.
var table3 = map[Category][3]int{
	Advertising:    {46, 3, 3},
	Payments:       {15, 6, 5},
	DevTools:       {11, 7, 5},
	Engagement:     {12, 0, 0},
	Social:         {10, 6, 4},
	Authentication: {7, 10, 6},
	Unknown:        {10, 4, 4},
	Hybrid:         {6, 7, 5},
	Utility:        {4, 2, 2},
	UserSupport:    {4, 0, 0},
}

// Table3 returns a copy of the target SDK-count matrix (WebView, CT, both).
func Table3() map[Category][3]int {
	out := make(map[Category][3]int, len(table3))
	for k, v := range table3 {
		out[k] = v
	}
	return out
}

// named SDKs, straight from Tables 4 and 5. An entry present in both tables
// (NAVER, Kakao, Ticketmaster, Cube Storm, …) carries both counts and is a
// "both" SDK. A handful of named SDKs are marked both to satisfy the Table 3
// matrix even where the paper reports only one side (their other-side count
// is set to a small value): HyprMX, Linkvertise and Taboola "also utilized
// WebViews" (§4.1.1); Juspay/Ticketmaster/Checkout "also support WebViews"
// (§4.1.4); android-customtabs exists to fall back to WebViews (§4.1.3).
var named = []SDK{
	// Advertising — WebView (Table 4).
	{Name: "AppLovin", Package: "com.applovin", Category: Advertising, WebViewApps: 27397},
	{Name: "ironSource", Package: "com.ironsource", Category: Advertising, WebViewApps: 16326},
	{Name: "ByteDance", Package: "com.bytedance.sdk", Category: Advertising, WebViewApps: 13080},
	{Name: "InMobi", Package: "com.inmobi", Category: Advertising, WebViewApps: 10066},
	{Name: "Digital Turbine", Package: "com.fyber", Category: Advertising, WebViewApps: 8654},
	// Advertising — CT (Table 5); all three also use WebViews.
	{Name: "HyprMX", Package: "com.hyprmx", Category: Advertising, WebViewApps: 1257, CTApps: 1257},
	{Name: "Linkvertise", Package: "com.linkvertise", Category: Advertising, WebViewApps: 383, CTApps: 383},
	{Name: "Taboola", Package: "com.taboola", Category: Advertising, WebViewApps: 317, CTApps: 317},

	// Engagement — WebView only (Table 4; no CT engagement SDKs found).
	{Name: "Open Measurement", Package: "com.iab.omid", Category: Engagement, WebViewApps: 11333},
	{Name: "SafeDK", Package: "com.safedk", Category: Engagement, WebViewApps: 7427},
	{Name: "Airship", Package: "com.urbanairship", Category: Engagement, WebViewApps: 652},
	{Name: "Branch", Package: "io.branch", Category: Engagement, WebViewApps: 514},

	// Development Tools.
	{Name: "Flutter", Package: "io.flutter", Category: DevTools, WebViewApps: 5568},
	{Name: "InAppWebView", Package: "com.pichillilorenzo.flutter_inappwebview", Category: DevTools, WebViewApps: 1868},
	{Name: "Corona", Package: "com.ansca.corona", Category: DevTools, WebViewApps: 449},
	{Name: "AdvancedWebView", Package: "im.delight.android.webview", Category: DevTools, WebViewApps: 386},
	{Name: "android-customtabs", Package: "saschpe.android.customtabs", Category: DevTools, WebViewApps: 53, CTApps: 53},
	{Name: "GoodBarber", Package: "com.goodbarber", Category: DevTools, CTApps: 48},
	{Name: "Mobiroller", Package: "com.mobiroller", Category: DevTools, CTApps: 27},

	// Payments.
	{Name: "Stripe", Package: "com.stripe", Category: Payments, WebViewApps: 1171},
	{Name: "RazorPay", Package: "com.razorpay", Category: Payments, WebViewApps: 484},
	{Name: "PayTM", Package: "net.one97.paytm", Category: Payments, WebViewApps: 400},
	{Name: "Juspay", Package: "in.juspay", Category: Payments, WebViewApps: 77, CTApps: 77},
	{Name: "Ticketmaster Checkout", Package: "com.ticketmaster.checkout", Category: Payments, WebViewApps: 47, CTApps: 47},
	{Name: "Checkout", Package: "com.checkout", Category: Payments, WebViewApps: 47, CTApps: 47},

	// User Support — WebView only.
	{Name: "Zendesk", Package: "zendesk.core", Category: UserSupport, WebViewApps: 1000},
	{Name: "Freshchat", Package: "com.freshchat", Category: UserSupport, WebViewApps: 438},
	{Name: "LicensesDialog", Package: "de.psdev.licensesdialog", Category: UserSupport, WebViewApps: 129},

	// Social.
	{Name: "VK", Package: "com.vk.sdk", Category: Social, WebViewApps: 456},
	{Name: "NAVER", Package: "com.navercorp.nid", Category: Social, WebViewApps: 406, CTApps: 157},
	{Name: "Kakao", Package: "com.kakao.sdk", Category: Social, WebViewApps: 347, CTApps: 54},
	{Name: "Facebook", Package: "com.facebook", Category: Social, CTApps: 23234},

	// Utility.
	{Name: "NAVER Maps", Package: "com.naver.maps", Category: Utility, WebViewApps: 130},
	{Name: "Barcode Scanner", Package: "com.google.zxing", Category: Utility, WebViewApps: 129},
	{Name: "Ticketmaster", Package: "com.ticketmaster.tickets", Category: Utility, WebViewApps: 64, CTApps: 55},
	{Name: "MyChart", Package: "epic.mychart", Category: Utility, WebViewApps: 16, CTApps: 16},

	// Authentication.
	{Name: "Gigya", Package: "com.gigya", Category: Authentication, WebViewApps: 120},
	{Name: "NAVER Identity", Package: "com.navercorp.nid.identity", Category: Authentication, WebViewApps: 90, CTApps: 81},
	{Name: "Amazon Identity", Package: "com.amazon.identity", Category: Authentication, WebViewApps: 37, CTApps: 11},
	{Name: "Google Firebase", Package: "com.google.firebase.auth", Category: Authentication, CTApps: 7565},
	{Name: "AdobePass", Package: "com.adobe.adobepass", Category: Authentication, CTApps: 55},

	// Hybrid Functionality.
	{Name: "Baby Panda World", Package: "com.sinyee.babybus", Category: Hybrid, WebViewApps: 194},
	{Name: "SoftCraft", Package: "com.softcraft", Category: Hybrid, WebViewApps: 15, CTApps: 12},
	{Name: "Cube Storm", Package: "com.cubestorm", Category: Hybrid, WebViewApps: 14, CTApps: 14},
	{Name: "Scripps News", Package: "com.scripps.news", Category: Hybrid, CTApps: 13},
}

// Catalog returns the full SDK catalog: named entries, deterministic filler
// entries padding each category to the Table 3 matrix, and the excluded
// com.google.android entry. It panics if the construction cannot satisfy
// the matrix (a programming error caught by tests).
func Catalog() []SDK {
	out := make([]SDK, 0, 160)
	out = append(out, named...)

	for _, cat := range Categories {
		want := table3[cat]
		have := countFor(out, cat)
		slug := slugOf(cat)

		// Filler "both" SDKs first, then WebView-only, then CT-only.
		serial := 0
		mk := func(kind string, wv, ct int) SDK {
			serial++
			return SDK{
				Name:        fmt.Sprintf("%s %s %02d", displayOf(cat), kind, serial),
				Package:     fmt.Sprintf("com.%s.%s%02d", slug, kind, serial),
				Category:    cat,
				WebViewApps: wv,
				CTApps:      ct,
				Obfuscated:  cat == Unknown && serial <= 4,
			}
		}
		for have[2] < want[2] {
			s := mk("dual", fillerCount(cat, serial), fillerCount(cat, serial+3)/2+101)
			out = append(out, s)
			have[0]++
			have[1]++
			have[2]++
		}
		for have[0] < want[0] {
			out = append(out, mk("wv", fillerCount(cat, serial), 0))
			have[0]++
		}
		for have[1] < want[1] {
			out = append(out, mk("ct", 0, fillerCount(cat, serial)))
			have[1]++
		}
		if have != want {
			panic(fmt.Sprintf("sdkindex: category %s has %v SDKs, want %v (named entries overfill the matrix)", cat, have, want))
		}
	}

	out = append(out, SDK{
		Name:     "Google Android SDK",
		Package:  "com.google.android",
		Category: Unknown,
		Excluded: true,
	})
	return out
}

func countFor(sdks []SDK, cat Category) [3]int {
	var v [3]int
	for i := range sdks {
		s := &sdks[i]
		if s.Category != cat || s.Excluded {
			continue
		}
		if s.UsesWebView() {
			v[0]++
		}
		if s.UsesCT() {
			v[1]++
		}
		if s.UsesBoth() {
			v[2]++
		}
	}
	return v
}

// fillerCount produces decreasing app counts for filler SDKs, always above
// the paper's >100-apps package threshold and below the smallest named SDK
// of large categories.
func fillerCount(cat Category, serial int) int {
	base := 2400
	if cat == Advertising || cat == Engagement {
		base = 4800
	}
	n := base / (serial + 1)
	if n < 110 {
		n = 110
	}
	return n
}

func slugOf(c Category) string {
	switch c {
	case Advertising:
		return "adnet"
	case Engagement:
		return "measure"
	case DevTools:
		return "devkit"
	case Payments:
		return "payproc"
	case UserSupport:
		return "support"
	case Social:
		return "socialkit"
	case Utility:
		return "utilsdk"
	case Authentication:
		return "idp"
	case Hybrid:
		return "hybridfx"
	default:
		return "unknownpkg"
	}
}

func displayOf(c Category) string {
	switch c {
	case DevTools:
		return "DevTool"
	case UserSupport:
		return "Support"
	case Hybrid:
		return "Hybrid"
	default:
		return string(c)
	}
}
