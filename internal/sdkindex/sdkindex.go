// Package sdkindex is the stand-in for the Google Play SDK Index the paper
// uses to label Java packages with the SDK they belong to (§3.1.4).
//
// The catalog encodes the paper's published SDK landscape: every named SDK
// from Tables 4 and 5 with its package prefix and app-count marginals, plus
// synthetic filler SDKs so that the per-category SDK counts match Table 3
// exactly (125 SDKs using WebViews, 45 using CTs, 34 using both). The
// corpus generator consumes the same catalog to plant SDK code in apps, and
// the pipeline labels what it finds with Index.Lookup — so labeling is a
// real longest-prefix match over package names, not a lookup of planted
// answers.
package sdkindex

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Category classifies an SDK's primary function, following the paper's
// taxonomy (Table 3).
type Category string

// SDK categories.
const (
	Advertising    Category = "Advertising"
	Engagement     Category = "Engagement"
	DevTools       Category = "Development Tools"
	Payments       Category = "Payments"
	UserSupport    Category = "User Support"
	Social         Category = "Social"
	Utility        Category = "Utility"
	Authentication Category = "Authentication"
	Hybrid         Category = "Hybrid Functionality"
	Unknown        Category = "Unknown"
)

// Categories lists all categories in Table 3's order.
var Categories = []Category{
	Advertising, Payments, DevTools, Engagement, Social,
	Authentication, Unknown, Hybrid, Utility, UserSupport,
}

// SDK is one catalog entry.
type SDK struct {
	Name     Name
	Package  string // Java package prefix, e.g. "com.applovin"
	Category Category
	// WebViewApps / CTApps are the paper-reported (or synthesised, for
	// filler SDKs) number of apps embedding this SDK's WebView / CT usage,
	// at full corpus scale. Zero means the SDK does not use that surface.
	WebViewApps int
	CTApps      int
	// Obfuscated marks packages that could not be labeled because their
	// names are obfuscated (4 of the 14 unlabeled packages).
	Obfuscated bool
	// Excluded marks catalog entries deliberately left out of SDK
	// statistics (Google's com.google.android, §3.1.4).
	Excluded bool
}

// Name is an SDK's display name.
type Name = string

// UsesWebView reports whether the SDK drives WebViews.
func (s *SDK) UsesWebView() bool { return s.WebViewApps > 0 }

// UsesCT reports whether the SDK drives Custom Tabs.
func (s *SDK) UsesCT() bool { return s.CTApps > 0 }

// UsesBoth reports whether the SDK drives both surfaces.
func (s *SDK) UsesBoth() bool { return s.UsesWebView() && s.UsesCT() }

// CategoryTarget holds the paper-reported union of apps using any SDK of a
// category (Tables 4 and 5 "Total #apps" columns). Marginal per-SDK counts
// exceed these unions because apps embed several SDKs of the same kind.
type CategoryTarget struct {
	Category    Category
	WebViewApps int // union of apps using the category's WebView SDKs
	CTApps      int // union of apps using the category's CT SDKs
}

// Targets reproduces the per-category union totals of Tables 4 and 5.
var Targets = []CategoryTarget{
	{Advertising, 39163, 1953},
	{Engagement, 21040, 0},
	{DevTools, 7020, 172},
	{Payments, 3212, 208},
	{UserSupport, 1692, 0},
	{Social, 1686, 23807},
	{Utility, 362, 71},
	{Authentication, 342, 7802},
	{Hybrid, 256, 87},
	{Unknown, 900, 120}, // not reported per-category; modest filler values
}

// TargetFor returns the union target for a category.
func TargetFor(c Category) CategoryTarget {
	for _, t := range Targets {
		if t.Category == c {
			return t
		}
	}
	return CategoryTarget{Category: c}
}

// Index is a package-prefix lookup table over the catalog.
type Index struct {
	sdks     []SDK
	prefixes []string // sorted for deterministic longest-prefix search
	byPrefix map[string]int

	fpOnce sync.Once
	fp     string
}

// NewIndex builds an index over the given catalog entries.
func NewIndex(sdks []SDK) *Index {
	idx := &Index{sdks: sdks, byPrefix: make(map[string]int, len(sdks))}
	for i := range sdks {
		idx.byPrefix[sdks[i].Package] = i
		idx.prefixes = append(idx.prefixes, sdks[i].Package)
	}
	sort.Strings(idx.prefixes)
	return idx
}

var (
	defaultOnce sync.Once
	defaultIdx  *Index
)

// Default returns an index over the full built-in catalog. The index is
// immutable and shared: building it regenerates the whole catalog, which
// is far too expensive to repeat on a per-APK path.
func Default() *Index {
	defaultOnce.Do(func() { defaultIdx = NewIndex(Catalog()) })
	return defaultIdx
}

// All returns the catalog entries (excluding none).
func (x *Index) All() []SDK { return x.sdks }

// Lookup labels a Java package name with its SDK by longest-prefix match:
// "com.applovin.adview" matches the "com.applovin" entry. The boolean is
// false when no catalog prefix applies (an unlabelled package).
func (x *Index) Lookup(pkg string) (*SDK, bool) {
	for pkg != "" {
		if i, ok := x.byPrefix[pkg]; ok {
			return &x.sdks[i], true
		}
		dot := strings.LastIndexByte(pkg, '.')
		if dot < 0 {
			return nil, false
		}
		pkg = pkg[:dot]
	}
	return nil, false
}

// Fingerprint returns a short stable hash over everything in the catalog
// that labeling depends on (prefix, name, category, exclusion and
// obfuscation flags). Content-addressed result caches mix it into their
// keys, so swapping or editing the SDK index invalidates every cached
// attribution instead of silently serving labels from the old catalog.
func (x *Index) Fingerprint() string {
	x.fpOnce.Do(func() {
		h := sha256.New()
		for i := range x.sdks {
			s := &x.sdks[i]
			fmt.Fprintf(h, "%s\x00%s\x00%s\x00%t\x00%t\n",
				s.Package, s.Name, s.Category, s.Excluded, s.Obfuscated)
		}
		x.fp = hex.EncodeToString(h.Sum(nil))[:16]
	})
	return x.fp
}

// ByCategory returns the catalog entries of one category, in catalog order.
func (x *Index) ByCategory(c Category) []SDK {
	var out []SDK
	for _, s := range x.sdks {
		if s.Category == c {
			out = append(out, s)
		}
	}
	return out
}

// Counts tallies the Table 3 matrix over the catalog: per category, how
// many SDKs use WebViews, CTs and both. Excluded entries are skipped.
func (x *Index) Counts() map[Category][3]int {
	out := make(map[Category][3]int)
	for i := range x.sdks {
		s := &x.sdks[i]
		if s.Excluded {
			continue
		}
		v := out[s.Category]
		if s.UsesWebView() {
			v[0]++
		}
		if s.UsesCT() {
			v[1]++
		}
		if s.UsesBoth() {
			v[2]++
		}
		out[s.Category] = v
	}
	return out
}

// Totals sums Counts over all categories: (usingWebView, usingCT, usingBoth).
func (x *Index) Totals() (wv, ct, both int) {
	for _, v := range x.Counts() {
		wv += v[0]
		ct += v[1]
		both += v[2]
	}
	return wv, ct, both
}
