package iab

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/internet"
	"repro/internal/measure"
	"repro/internal/netlog"
	"repro/internal/webview"
)

// probe loads the controlled test page (optionally with extra HTML
// appended to the body) through an IAB configured with the behaviour for
// the given injection kind.
func probe(t *testing.T, kind corpus.InjectionKind, extraHTML string) (Behavior, *webview.WebView, *netlog.Log) {
	t.Helper()
	net := internet.New()
	html := measure.TestPageHTML
	if extraHTML != "" {
		html = strings.Replace(html, "</main>", extraHTML+"</main>", 1)
	}
	net.RegisterFunc("measure.test", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/trace.js" {
			w.Header().Set("Content-Type", "application/javascript")
			w.Write([]byte(measure.TraceJS))
			return
		}
		w.Header().Set("Content-Type", "text/html")
		w.Write([]byte(html))
	})

	log := netlog.New()
	b := For(kind, "com.test.app", "")
	wv := webview.New(webview.Config{
		ID:         "iab-test",
		AppPackage: "com.test.app",
		Client:     net.Client(),
		Log:        log,
	})
	wv.GetSettings().JavaScriptEnabled = true
	b.Configure(wv)
	if err := wv.LoadURL(context.Background(), b.WrapURL("https://measure.test/")); err != nil {
		t.Fatalf("LoadURL: %v", err)
	}
	if err := b.OnPageLoaded(wv); err != nil {
		t.Fatalf("OnPageLoaded: %v\nconsole: %v", err, wv.Page().Console)
	}
	return b, wv, log
}

func TestMetaCommerceBehavior(t *testing.T) {
	b, wv, _ := probe(t, corpus.InjectMetaCommerce, "")
	m := b.(*metaCommerce)

	// Bridges exposed with the observed names.
	bridges := strings.Join(wv.Bridges(), ",")
	for _, want := range []string{"fbpayIAWBridge", "metaCheckoutIAWBridge", "_AutofillExtensions"} {
		if !strings.Contains(bridges, want) {
			t.Errorf("bridge %s missing (have %s)", want, bridges)
		}
	}
	// Listing 1 inserted the autofill SDK script element.
	if wv.Page().Doc.GetElementByID("instagram-autofill-sdk") == nil {
		t.Error("autofill SDK script not inserted")
	}
	// The test page has a form, so autofill data was requested.
	if len(m.AutofillRequests) != 1 {
		t.Errorf("autofill requests = %v", m.AutofillRequests)
	}
	// DOM tag counts were returned.
	if !strings.Contains(m.TagCountsJSON, `"P":`) || !strings.Contains(m.TagCountsJSON, `"TABLE":1`) {
		t.Errorf("tag counts = %s", m.TagCountsJSON)
	}
	// Three simHashes: text+dom, text, dom.
	if len(m.SimHashes) != 3 {
		t.Fatalf("simhashes = %v", m.SimHashes)
	}
	for i, prefix := range []string{"text+dom:", "text:", "dom:"} {
		if !strings.HasPrefix(m.SimHashes[i], prefix) {
			t.Errorf("simhash %d = %s", i, m.SimHashes[i])
		}
	}
	// Performance metrics logged.
	if len(m.PerfLogs) != 1 || !strings.Contains(m.PerfLogs[0], "dcl=120ms") {
		t.Errorf("perf logs = %v", m.PerfLogs)
	}
}

func TestMetaSimHashStability(t *testing.T) {
	b1, _, _ := probe(t, corpus.InjectMetaCommerce, "")
	b2, _, _ := probe(t, corpus.InjectMetaCommerce, "")
	m1, m2 := b1.(*metaCommerce), b2.(*metaCommerce)
	for i := range m1.SimHashes {
		if m1.SimHashes[i] != m2.SimHashes[i] {
			t.Errorf("simhash %d unstable: %s vs %s", i, m1.SimHashes[i], m2.SimHashes[i])
		}
	}
	// The text hash must reflect actual content, not degenerate to the
	// FNV basis (-2128831035) the empty string hashes to.
	for _, h := range m1.SimHashes {
		if strings.HasSuffix(h, ":-2128831035") || strings.HasSuffix(h, ":0") {
			t.Errorf("degenerate simhash %s", h)
		}
	}
}

func TestMetaSimHashSensitiveToContent(t *testing.T) {
	// Cloaking detection requires different pages to hash differently.
	b1, _, _ := probe(t, corpus.InjectMetaCommerce, "")
	b2, _, _ := probe(t, corpus.InjectMetaCommerce,
		`<section><p>entirely different injected content about cloaked payloads
		shown only to crawlers with many extra words repeated cloaked cloaked</p></section>`)
	m1, m2 := b1.(*metaCommerce), b2.(*metaCommerce)
	if m1.SimHashes[1] == m2.SimHashes[1] {
		t.Errorf("text simhash identical across different pages: %s", m1.SimHashes[1])
	}
}

func TestRedirectorWrapping(t *testing.T) {
	b := For(corpus.InjectMetaCommerce, "com.facebook.katana", "lm.facebook.com/l.php")
	wrapped := b.WrapURL("https://example.com/article")
	if !strings.HasPrefix(wrapped, "https://lm.facebook.com/l.php?") {
		t.Errorf("wrapped = %s", wrapped)
	}
	target, ok := RedirectTarget(wrapped)
	if !ok || target != "https://example.com/article" {
		t.Errorf("recovered = %q ok=%v", target, ok)
	}
	// Plain apps without redirectors pass through.
	p := For(corpus.InjectNone, "app", "")
	if got := p.WrapURL("https://x.example/"); got != "https://x.example/" {
		t.Errorf("plain wrap = %s", got)
	}
}

func TestRadarBehavior(t *testing.T) {
	_, _, log := probe(t, corpus.InjectRadar, "")
	hosts := log.Hosts("iab-test")
	joined := strings.Join(hosts, ",")
	for _, want := range []string{"radar.cedexis.com", "cedexis-radar.net"} {
		if !strings.Contains(joined, want) {
			t.Errorf("radar host %s not contacted (hosts: %v)", want, hosts)
		}
	}
	// Trackers beyond the visited site (Figure 6a's series).
	external := log.HostsNotUnder("iab-test", "measure.test")
	if len(external) < 3 {
		t.Errorf("external endpoints = %v, want >= 3", external)
	}
}

func TestGoogleAdsNoAdView(t *testing.T) {
	b, _, log := probe(t, corpus.InjectAdsGoogle, "")
	a := b.(*adsGoogle)
	if len(a.AdPayloads) != 1 {
		t.Fatalf("ad payloads = %v", a.AdPayloads)
	}
	p := a.AdPayloads[0]
	// The paper's exact observation: width/height 0, noAdView.
	for _, want := range []string{`"width":0`, `"height":0`, `"notVisibleReason":"noAdView"`, "doubleclick.net"} {
		if !strings.Contains(p, want) {
			t.Errorf("payload missing %q: %s", want, p)
		}
	}
	// And no ad request was made.
	for _, h := range log.Hosts("iab-test") {
		if strings.Contains(h, "doubleclick") {
			t.Error("ad fetched despite missing ad view")
		}
	}
}

func TestGoogleAdsWithAdView(t *testing.T) {
	b, _, log := probe(t, corpus.InjectAdsGoogle, `<div class="ad-view"></div>`)
	a := b.(*adsGoogle)
	if len(a.AdPayloads) != 1 || !strings.Contains(a.AdPayloads[0], `"width":320`) {
		t.Fatalf("payload = %v", a.AdPayloads)
	}
	found := false
	for _, h := range log.Hosts("iab-test") {
		if strings.Contains(h, "doubleclick") {
			found = true
		}
	}
	if !found {
		t.Error("ad request not made despite ad view present")
	}
}

func TestKikContactsManyAdNetworks(t *testing.T) {
	// Content-rich page: replicate list items to push element count up.
	rich := strings.Repeat("<div class=\"story\"><p>text</p><img src=\"/pixel.png\"><span>meta</span></div>\n", 40)
	_, _, log := probe(t, corpus.InjectAdsMulti, rich)
	external := log.HostsNotUnder("iab-test", "measure.test")
	if len(external) < 15 {
		t.Errorf("rich-content ad endpoints = %d (%v), want > 15", len(external), external)
	}
	for _, want := range []string{"ads.mopub.com", "supply.inmobicdn.net"} {
		found := false
		for _, h := range external {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("ad network %s not contacted", want)
		}
	}
}

func TestKikFewerEndpointsOnSparsePages(t *testing.T) {
	net := internet.New()
	net.RegisterFunc("sparse.test", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>s</title></head><body><p>tiny</p></body></html>`))
	})
	log := netlog.New()
	b := For(corpus.InjectAdsMulti, "kik.android", "")
	wv := webview.New(webview.Config{ID: "kik", AppPackage: "kik.android", Client: net.Client(), Log: log})
	wv.GetSettings().JavaScriptEnabled = true
	b.Configure(wv)
	if err := wv.LoadURL(context.Background(), "https://sparse.test/"); err != nil {
		t.Fatal(err)
	}
	if err := b.OnPageLoaded(wv); err != nil {
		t.Fatal(err)
	}
	external := log.HostsNotUnder("kik", "sparse.test")
	if len(external) > 8 {
		t.Errorf("sparse-page endpoints = %d, want few", len(external))
	}
}

func TestObfuscatedBridge(t *testing.T) {
	b, wv, _ := probe(t, corpus.InjectObfuscated, "")
	if len(wv.Bridges()) != 1 || wv.Bridges()[0] != "q7xz" {
		t.Errorf("bridges = %v", wv.Bridges())
	}
	if b.Name() != "obfuscated-bridge" {
		t.Errorf("name = %s", b.Name())
	}
}

func TestPlainBehaviorInjectsNothing(t *testing.T) {
	_, wv, _ := probe(t, corpus.InjectNone, "")
	if len(wv.Bridges()) != 0 {
		t.Errorf("plain IAB exposed bridges: %v", wv.Bridges())
	}
}

func TestInferIntentTable8Rows(t *testing.T) {
	for kind, wantJS := range map[corpus.InjectionKind]string{
		corpus.InjectMetaCommerce: "DOM tag counts",
		corpus.InjectRadar:        "Cedexis",
		corpus.InjectAdsGoogle:    "Google Ads SDK",
		corpus.InjectAdsMulti:     "MoPub",
		corpus.InjectObfuscated:   "No injection",
		corpus.InjectNone:         "No injection",
	} {
		js, _ := InferIntent(For(kind, "app", ""))
		if !strings.Contains(js, wantJS) {
			t.Errorf("kind %d intent = %q, want mention of %q", kind, js, wantJS)
		}
	}
}
