// Package iab implements the WebView-based In-App-Browser behaviours the
// paper uncovers in the top 1K apps (Table 8). Each behaviour is the real
// mechanism, not an annotation: JS bridges are exposed with the observed
// names, and the injected programs are genuine JavaScript executed by the
// page VM — inserting the autofill SDK script (Listing 1), computing DOM
// tag counts and simHashes, logging performance metrics, running Cedexis
// Radar measurements, and negotiating ad slots with ad-network endpoints.
package iab

import (
	"fmt"
	"net/url"

	"repro/internal/corpus"
	"repro/internal/jsvm"
	"repro/internal/webview"
)

// Behavior drives one app's IAB: bridge setup before navigation and
// injections after the page loads.
type Behavior interface {
	// Name identifies the behaviour for reports.
	Name() string
	// WrapURL rewrites the target through the app's redirector
	// (lm.facebook.com/l.php, l.instagram.com, t.co), or returns it as-is.
	WrapURL(target string) string
	// Configure exposes JS bridges on the WebView before navigation.
	Configure(wv *webview.WebView)
	// OnPageLoaded performs the app's injections against the loaded page.
	OnPageLoaded(wv *webview.WebView) error
}

// For returns the behaviour implementation for an injection kind.
func For(kind corpus.InjectionKind, appPackage, redirector string) Behavior {
	switch kind {
	case corpus.InjectMetaCommerce:
		return &metaCommerce{app: appPackage, redirector: redirector}
	case corpus.InjectRadar:
		return &radar{app: appPackage}
	case corpus.InjectAdsGoogle:
		return &adsGoogle{app: appPackage}
	case corpus.InjectAdsMulti:
		return &adsMulti{app: appPackage}
	case corpus.InjectObfuscated:
		return &obfuscated{app: appPackage}
	default:
		return &plain{app: appPackage, redirector: redirector}
	}
}

// plain is the no-injection IAB (Snapchat, Twitter, Reddit): the link
// simply loads, possibly via a redirector (Twitter's t.co).
type plain struct {
	app        string
	redirector string
}

func (p *plain) Name() string { return "plain" }

func (p *plain) WrapURL(target string) string { return wrapRedirector(p.redirector, target) }

func (p *plain) Configure(wv *webview.WebView) {}

func (p *plain) OnPageLoaded(wv *webview.WebView) error { return nil }

// wrapRedirector builds the tracking-redirector URL the FB/IG/Twitter IABs
// route clicks through (§4.2.1): the intended URL and a click identifier
// ride in the query string.
func wrapRedirector(redirector, target string) string {
	if redirector == "" {
		return target
	}
	return fmt.Sprintf("https://%s?u=%s&e=click%08x", redirector,
		url.QueryEscape(target), len(target)*2654435761)
}

// RedirectTarget recovers the intended URL from a redirector request.
func RedirectTarget(redirectorURL string) (string, bool) {
	u, err := url.Parse(redirectorURL)
	if err != nil {
		return "", false
	}
	target := u.Query().Get("u")
	if target == "" {
		return "", false
	}
	return target, true
}

// metaCommerce reproduces the Facebook/Instagram IAB (§4.2.1): three JS
// bridges (Meta payments, checkout, autofill), the Listing-1 autofill SDK
// insertion, a DOM-tag-count collector, simHash computation for cloaking
// detection, and performance-metric logging.
type metaCommerce struct {
	app        string
	redirector string

	// Observations the bridges accumulate (the app side of the bridge).
	AutofillRequests []string
	TagCountsJSON    string
	SimHashes        []string
	PerfLogs         []string
}

func (m *metaCommerce) Name() string { return "meta-commerce" }

func (m *metaCommerce) WrapURL(target string) string { return wrapRedirector(m.redirector, target) }

func (m *metaCommerce) Configure(wv *webview.WebView) {
	pay := jsvm.NewObject()
	pay.SetFunc("isAvailable", func(c jsvm.Call) (jsvm.Value, error) {
		return jsvm.Bool(true), nil
	})
	wv.AddJavascriptInterface(pay, "fbpayIAWBridge")

	checkout := jsvm.NewObject()
	checkout.SetFunc("onCheckoutDetected", func(c jsvm.Call) (jsvm.Value, error) {
		return jsvm.Undefined(), nil
	})
	wv.AddJavascriptInterface(checkout, "metaCheckoutIAWBridge")

	autofill := jsvm.NewObject()
	autofill.SetFunc("requestAutofillData", func(c jsvm.Call) (jsvm.Value, error) {
		m.AutofillRequests = append(m.AutofillRequests, c.Arg(0).StringValue())
		// The Java side returns profile data for merchant checkouts.
		profile := jsvm.NewObject()
		profile.Set("name", jsvm.String("Test User"))
		profile.Set("phone", jsvm.String("+1-555-0100"))
		profile.Set("address", jsvm.String("1 Test Way"))
		return jsvm.ObjectValue(profile), nil
	})
	autofill.SetFunc("reportTagCounts", func(c jsvm.Call) (jsvm.Value, error) {
		m.TagCountsJSON = c.Arg(0).StringValue()
		return jsvm.Undefined(), nil
	})
	autofill.SetFunc("reportSimHash", func(c jsvm.Call) (jsvm.Value, error) {
		m.SimHashes = append(m.SimHashes, c.Arg(0).StringValue())
		return jsvm.Undefined(), nil
	})
	autofill.SetFunc("logPerf", func(c jsvm.Call) (jsvm.Value, error) {
		m.PerfLogs = append(m.PerfLogs, c.Arg(0).StringValue())
		return jsvm.Undefined(), nil
	})
	wv.AddJavascriptInterface(autofill, "_AutofillExtensions")
}

func (m *metaCommerce) OnPageLoaded(wv *webview.WebView) error {
	for _, script := range []string{
		autofillInsertJS, // Listing 1
		tagCountsJS,
		simHashJS,
		perfMetricsJS,
	} {
		if err := wv.EvaluateJavascript(script, nil); err != nil {
			return fmt.Errorf("iab: meta injection: %w", err)
		}
	}
	return nil
}

// radar reproduces LinkedIn's IAB (§4.2.2): the Cedexis Radar network-
// measurement SDK runs inside every visited page, probing CDN and cloud
// endpoints from the user's device and reporting to Radar's collectors,
// alongside LinkedIn's own CDN/ads/perf services.
type radar struct {
	app string
}

func (r *radar) Name() string { return "cedexis-radar" }

func (r *radar) WrapURL(target string) string { return target }

func (r *radar) Configure(wv *webview.WebView) {}

func (r *radar) OnPageLoaded(wv *webview.WebView) error {
	if err := wv.EvaluateJavascript(radarJS, nil); err != nil {
		return fmt.Errorf("iab: radar injection: %w", err)
	}
	return nil
}

// adsGoogle reproduces Moj/Chingari (§4.2.3): the googleAdsJsInterface
// bridge plus injected code that prepares a video-ad slot via Google Ads.
// On pages without a compatible ad view the prepared slot stays 0x0 with
// notVisibleReason=noAdView — exactly the observation in the paper.
type adsGoogle struct {
	app string
	// AdPayloads collects the JSON ad specifications the injected code
	// hands to the bridge.
	AdPayloads []string
}

func (a *adsGoogle) Name() string { return "google-ads" }

func (a *adsGoogle) WrapURL(target string) string { return target }

func (a *adsGoogle) Configure(wv *webview.WebView) {
	bridge := jsvm.NewObject()
	bridge.SetFunc("onAdSlotPrepared", func(c jsvm.Call) (jsvm.Value, error) {
		a.AdPayloads = append(a.AdPayloads, c.Arg(0).StringValue())
		return jsvm.Undefined(), nil
	})
	wv.AddJavascriptInterface(bridge, "googleAdsJsInterface")
}

func (a *adsGoogle) OnPageLoaded(wv *webview.WebView) error {
	if err := wv.EvaluateJavascript(googleAdsJS, nil); err != nil {
		return fmt.Errorf("iab: google-ads injection: %w", err)
	}
	return nil
}

// adsMulti reproduces Kik (§4.2.4): heavily obfuscated injected code that
// reads page metadata (read-only Web APIs only, Table 9) and negotiates
// with multiple ad networks — Google, MoPub, InMobi — contacting more
// endpoints on content-rich pages (Figure 6b).
type adsMulti struct {
	app string
}

func (a *adsMulti) Name() string { return "multi-network-ads" }

func (a *adsMulti) WrapURL(target string) string { return target }

func (a *adsMulti) Configure(wv *webview.WebView) {
	bridge := jsvm.NewObject()
	bridge.SetFunc("q", func(c jsvm.Call) (jsvm.Value, error) {
		return jsvm.Undefined(), nil
	})
	wv.AddJavascriptInterface(bridge, "googleAdsJsInterface")
}

func (a *adsMulti) OnPageLoaded(wv *webview.WebView) error {
	if err := wv.EvaluateJavascript(kikAdsJS, nil); err != nil {
		return fmt.Errorf("iab: kik injection: %w", err)
	}
	return nil
}

// obfuscated reproduces Pinterest (§4.2): a JS bridge whose class name is
// obfuscated, with no observable injected script.
type obfuscated struct {
	app string
}

func (o *obfuscated) Name() string { return "obfuscated-bridge" }

func (o *obfuscated) WrapURL(target string) string { return target }

func (o *obfuscated) Configure(wv *webview.WebView) {
	bridge := jsvm.NewObject()
	bridge.SetFunc("a", func(c jsvm.Call) (jsvm.Value, error) { return jsvm.Undefined(), nil })
	wv.AddJavascriptInterface(bridge, "q7xz")
}

func (o *obfuscated) OnPageLoaded(wv *webview.WebView) error { return nil }

// IsAdInjection reports whether the behaviour injects ad content.
func IsAdInjection(b Behavior) bool {
	switch b.(type) {
	case *adsGoogle, *adsMulti:
		return true
	}
	return false
}

// InferIntent renders the Table 8 "inferred intent" cell for a behaviour.
func InferIntent(b Behavior) (htmlJS, bridge string) {
	switch b.(type) {
	case *metaCommerce:
		return "Returns DOM tag counts; simHash for cloaking detection; autofill SDK; perf metrics",
			"Meta Checkout / Facebook Pay / AutofillExtensions"
	case *radar:
		return "Calls to Cedexis traffic management API", "No injection"
	case *adsGoogle:
		return "Insert and manage a video ad via Google Ads SDK", "Google Ads"
	case *adsMulti:
		return "Insert ads via ad networks: Google Ads, MoPub and InMobi", "Google Ads"
	case *obfuscated:
		return "No injection", "(Obfuscated)"
	default:
		return "No injection", "No injection"
	}
}

// BehaviorStats exposes per-behaviour observations for reports.
func BehaviorStats(b Behavior) map[string]any {
	out := map[string]any{"name": b.Name()}
	switch impl := b.(type) {
	case *metaCommerce:
		out["tagCounts"] = impl.TagCountsJSON
		out["simHashes"] = impl.SimHashes
		out["perfLogs"] = impl.PerfLogs
		out["autofillRequests"] = impl.AutofillRequests
	case *adsGoogle:
		out["adPayloads"] = impl.AdPayloads
	}
	return out
}
