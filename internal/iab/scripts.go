package iab

// The injected JavaScript programs, written against the ES5 subset the
// embedded VM executes. They are the behavioural core of Table 8: what the
// ten WebView-based IABs actually run inside third-party pages.

// autofillInsertJS is Listing 1 of the paper: the Facebook/Instagram IAB
// inserts the Meta autofill SDK script element into every visited page,
// then (when a form is present) requests user profile data over the
// _AutofillExtensions bridge to populate merchant checkouts.
const autofillInsertJS = `
(function(d, s, id){
    var sdkURL = "//connect.facebook.net/en_US/iab.autofill.enhanced.js";
    var js, fjs = d.getElementsByTagName(s)[0];
    if (d.getElementById(id)) {
        return;
    }
    js = d.createElement(s);
    js.id = id;
    js.src = sdkURL;
    if (fjs && fjs.parentNode) {
        fjs.parentNode.insertBefore(js, fjs);
    } else {
        d.body.insertBefore(js, null);
    }
}(document, 'script', 'instagram-autofill-sdk'));

(function() {
    var forms = document.getElementsByTagName("form");
    if (forms.length === 0) { return; }
    var profile = _AutofillExtensions.requestAutofillData("checkout");
    var marker = document.createElement("div");
    marker.id = "__iab_autofill_ready";
    document.body.insertBefore(marker, null);
    document.addEventListener("submit", function() { });
    document.removeEventListener("submit", function() { });
})();
`

// tagCountsJS returns a frequency dictionary of DOM tags to the app — the
// "Returns DOM Tag Counts" injection of Table 8.
const tagCountsJS = `
(function() {
    var counts = {};
    var all = document.body.getElementsByTagName("*");
    var first = all.item(0);
    for (var i = 0; i < all.length; i++) {
        var t = all[i].tagName;
        counts[t] = (counts[t] || 0) + 1;
    }
    _AutofillExtensions.reportTagCounts(JSON.stringify(counts));
})();
`

// simHashJS computes locality-sensitive hashes of (i) text and DOM, (ii)
// text only and (iii) DOM only — the Cloaker Catcher client-side cloaking
// detector [53] the Meta IABs embed. A 32-bit FNV-based simhash over
// shingles, entirely in page JavaScript.
const simHashJS = `
(function() {
    function fnv(s) {
        var h = 2166136261 | 0;
        for (var i = 0; i < s.length; i++) {
            h = h ^ s.charCodeAt(i);
            h = (h + (h << 1) + (h << 4) + (h << 7) + (h << 8) + (h << 24)) | 0;
        }
        return h;
    }
    function simhash(feats) {
        var counts = [];
        for (var b = 0; b < 32; b++) { counts.push(0); }
        for (var i = 0; i < feats.length; i++) {
            var v = fnv(feats[i]);
            for (var b = 0; b < 32; b++) {
                if (((v >> b) & 1) === 1) { counts[b] = counts[b] + 1; }
                else { counts[b] = counts[b] - 1; }
            }
        }
        var out = 0;
        for (var b = 0; b < 32; b++) {
            if (counts[b] > 0) { out = out | (1 << b); }
        }
        return out;
    }
    var rawWords = (document.body.textContent || "").split(" ");
    var textFeats = [];
    for (var i = 0; i < rawWords.length; i++) {
        var w = rawWords[i].trim();
        if (w.length > 0) { textFeats.push(w); }
    }
    var domFeats = [];
    var all = document.getElementsByTagName("*");
    var firstEl = all.item(0);
    for (var i = 0; i < all.length; i++) {
        var el = all[i];
        var feat = el.tagName;
        if (el.hasAttribute("id")) { feat = feat + "#"; }
        domFeats.push(feat);
    }
    var both = textFeats.concat(domFeats);
    _AutofillExtensions.reportSimHash("text+dom:" + simhash(both));
    _AutofillExtensions.reportSimHash("text:" + simhash(textFeats));
    _AutofillExtensions.reportSimHash("dom:" + simhash(domFeats));
})();
`

// perfMetricsJS logs page performance (DOM content loaded time, AMP
// support) to the console and the bridge.
const perfMetricsJS = `
(function() {
    var t = performance.timing;
    var dcl = t.domContentLoadedEventEnd - t.navigationStart;
    var htmlEls = document.querySelectorAll("html");
    var amp = false;
    if (htmlEls.length > 0 && htmlEls[0].hasAttribute("amp")) { amp = true; }
    var msg = "dcl=" + dcl + "ms amp=" + amp;
    console.log("[iab-perf] " + msg);
    _AutofillExtensions.logPerf(msg);
})();
`

// radarJS is the Cedexis Radar measurement run LinkedIn's IAB executes in
// visited pages: an init call to the Radar API, then availability /
// latency probes against CDN and cloud providers, plus LinkedIn's own
// services. Richer pages trigger more probes (Figure 6a).
const radarJS = `
(function() {
    var collectors = [
        "a.cedexis-radar.net",
        "b.cedexis-radar.net",
        "img-cdn.licdn.com",
        "px.ads.linkedin.com",
        "perf.linkedin.com",
        "c.cedexis-radar.net",
        "probe-cf.cedexis-test.net",
        "probe-aws.cedexis-test.net"
    ];
    function ping(host, path) {
        var xhr = new XMLHttpRequest();
        xhr.open("GET", "https://" + host + path);
        xhr.send();
    }
    ping("radar.cedexis.com", "/init?customer=linkedin");
    var richness = document.getElementsByTagName("*").length;
    var probes = 2 + Math.min(collectors.length - 2, Math.floor(richness / 30));
    for (var i = 0; i < probes; i++) {
        ping(collectors[i], "/probe?i=" + i + "&t=" + Date.now());
    }
})();
`

// googleAdsJS is the Moj/Chingari injection: prepare a video-ad slot via
// the Google Ads SDK. Without a compatible ad view on the page the slot
// stays 0x0 with notVisibleReason=noAdView and no ad request is made.
const googleAdsJS = `
(function() {
    var slot = {
        adUnit: "/21775744923/inapp/video-interstitial",
        src: "https://googleads.g.doubleclick.net/pagead/ads?fmt=video",
        width: 0,
        height: 0,
        notVisibleReason: ""
    };
    var views = document.querySelectorAll(".ad-view, #ad-slot, ins.adsbygoogle");
    if (views.length === 0) {
        slot.notVisibleReason = "noAdView";
    } else {
        slot.width = 320;
        slot.height = 180;
        var xhr = new XMLHttpRequest();
        xhr.open("GET", slot.src);
        xhr.send();
    }
    googleAdsJsInterface.onAdSlotPrepared(JSON.stringify(slot));
})();
`

// kikAdsJS is the Kik injection: deliberately obfuscated code that reads
// page metadata with read-only Web APIs and opens bid negotiations with a
// multitude of ad-network endpoints; content-rich pages yield more
// endpoint contacts (Figure 6b: >15 on average for rich sites).
const kikAdsJS = `
(function() {
    var _0xn = [
        "ads.mopub.com", "supply.inmobicdn.net",
        "googleads.g.doubleclick.net", "d2mxb7.cloudfront.net",
        "bid.adnet-exchange.com", "rtb.supply-side.net",
        "sync.pixel-match.io", "cdn.vast-serve.com",
        "px.openbidder.net", "match.dsp-one.com",
        "ads.video-mediate.tv", "tags.header-wrap.js.org",
        "collector.metrics-ad.net", "s2s.bridge-bid.com",
        "banner.fill-rate.app", "vast.preroll-hub.tv",
        "beacon.imp-track.net", "cm.cookie-sync.org",
        "adx.cross-bid.exchange", "pop.fallback-fill.com"
    ];
    var _0xm = document.querySelectorAll("meta");
    var _0xc = "";
    if (_0xm.length > 0) {
        var _0xa = _0xm[0].getAttribute("charset");
        if (_0xa) { _0xc = _0xa; }
        var _0xb = _0xm[0].getAttribute("name");
    }
    var _0xq = document.querySelectorAll("*").length;
    var _0xk = Math.min(_0xn.length, 4 + Math.floor(_0xq / 12));
    for (var _0xi = 0; _0xi < _0xk; _0xi++) {
        var _0xr = new XMLHttpRequest();
        _0xr.open("GET", "https://" + _0xn[_0xi] + "/bid?s=" + _0xi + "&c=" + _0xc);
        _0xr.send();
    }
})();
`
