// Package report renders the paper's tables and figures from pipeline
// aggregates, printing measured values next to the paper's published
// numbers (scaled to the corpus size) so shape agreement is auditable at a
// glance. All output is plain text via text/tabwriter.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/android"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/sdkindex"
	"repro/internal/webviewlint"
)

// paper-side constants for Table 7.
var paperTable7 = map[string][2]int{
	"apps_webview":                          {81720, 54833},
	android.MethodLoadURL:                   {77930, 50984},
	android.MethodAddJavascriptInterface:    {36899, 23087},
	android.MethodLoadDataWithBaseURL:       {35680, 27474},
	android.MethodEvaluateJavascript:        {26891, 18716},
	android.MethodRemoveJavascriptInterface: {19684, 15034},
	android.MethodLoadData:                  {8275, 918},
	android.MethodPostURL:                   {5028, 2678},
	"apps_ct":                               {29130, 27891},
	"apps_both":                             {21938, 16810},
}

type table struct {
	sb strings.Builder
	tw *tabwriter.Writer
}

func newTable(title string) *table {
	t := &table{}
	t.sb.WriteString(title)
	t.sb.WriteByte('\n')
	t.sb.WriteString(strings.Repeat("=", len(title)))
	t.sb.WriteByte('\n')
	t.tw = tabwriter.NewWriter(&t.sb, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cols ...any) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	fmt.Fprintln(t.tw, strings.Join(parts, "\t"))
}

func (t *table) String() string {
	t.tw.Flush()
	t.sb.WriteByte('\n')
	return t.sb.String()
}

func ratio(measured, paper int, scale int) string {
	if paper == 0 {
		return "-"
	}
	expected := float64(paper) / float64(scale)
	if expected == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(measured)/expected)
}

// Table2 renders the dataset funnel against the paper's Table 2.
func Table2(f pipeline.Funnel, scale int) string {
	t := newTable(fmt.Sprintf("Table 2: dataset funnel (scale 1/%d)", scale))
	t.row("stage", "measured", "paper", "paper/scale", "ratio")
	rows := []struct {
		name     string
		measured int
		paper    int
	}{
		{"Play Store apps in AndroZoo", f.Snapshot, corpus.PaperAndrozooApps},
		{"Apps found on Play Store", f.OnPlay, corpus.PaperOnPlayApps},
		{"Apps with 100k+ downloads", f.Popular, corpus.PaperPopularApps},
		{"... and updated after 2021", f.Filtered, corpus.PaperFilteredApps},
		{"Broken APKs", f.Broken, corpus.PaperBrokenAPKs},
		{"Apps successfully analyzed", f.Analyzed, corpus.PaperAnalyzedApps},
	}
	for _, r := range rows {
		t.row(r.name, r.measured, r.paper, (r.paper+scale/2)/scale, ratio(r.measured, r.paper, scale))
	}
	return t.String()
}

// Table3 renders the SDK-count matrix against the paper's Table 3.
func Table3(ag *pipeline.Aggregates) string {
	t := newTable("Table 3: SDKs using WebViews / CTs / both (measured vs paper)")
	t.row("SDK type", "WV", "CT", "both", "", "paper WV", "paper CT", "paper both")
	paper := sdkindex.Table3()
	var mw, mc, mb, pw, pc, pb int
	for _, cat := range sdkindex.Categories {
		m := ag.SDKMatrix[cat]
		p := paper[cat]
		t.row(cat, m[0], m[1], m[2], "", p[0], p[1], p[2])
		mw, mc, mb = mw+m[0], mc+m[1], mb+m[2]
		pw, pc, pb = pw+p[0], pc+p[1], pb+p[2]
	}
	t.row("Total", mw, mc, mb, "", pw, pc, pb)
	return t.String()
}

// paperTop lists the paper's Tables 4/5 top-SDK rows for side-by-side
// rendering.
var paperTable4 = map[sdkindex.Category][]struct {
	Name string
	Apps int
}{
	sdkindex.Advertising:    {{"AppLovin", 27397}, {"ironSource", 16326}, {"ByteDance", 13080}},
	sdkindex.Engagement:     {{"Open Measurement", 11333}, {"SafeDK", 7427}, {"Airship", 652}},
	sdkindex.DevTools:       {{"Flutter", 5568}, {"InAppWebView", 1868}, {"Corona", 449}},
	sdkindex.Payments:       {{"Stripe", 1171}, {"RazorPay", 484}, {"PayTM", 400}},
	sdkindex.UserSupport:    {{"Zendesk", 1000}, {"Freshchat", 438}, {"LicensesDialog", 129}},
	sdkindex.Social:         {{"VK", 456}, {"NAVER", 406}, {"Kakao", 347}},
	sdkindex.Utility:        {{"NAVER Maps", 130}, {"Barcode Scanner", 129}, {"Ticketmaster", 64}},
	sdkindex.Authentication: {{"Gigya", 120}, {"NAVER Identity", 90}, {"Amazon Identity", 37}},
	sdkindex.Hybrid:         {{"Baby Panda World", 194}, {"SoftCraft", 15}, {"Cube Storm", 14}},
}

var paperTable5 = map[sdkindex.Category][]struct {
	Name string
	Apps int
}{
	sdkindex.Social:         {{"Facebook", 23234}, {"NAVER", 157}, {"Kakao", 54}},
	sdkindex.Authentication: {{"Google Firebase", 7565}, {"NAVER Identity", 81}, {"AdobePass", 55}},
	sdkindex.Advertising:    {{"HyprMX", 1257}, {"Linkvertise", 383}, {"Taboola", 317}},
	sdkindex.Payments:       {{"Juspay", 77}, {"Ticketmaster Checkout", 47}, {"Checkout", 47}},
	sdkindex.DevTools:       {{"android-customtabs", 53}, {"GoodBarber", 48}, {"Mobiroller", 27}},
	sdkindex.Hybrid:         {{"Cube Storm", 14}, {"Scripps News", 13}},
	sdkindex.Utility:        {{"Ticketmaster", 55}, {"MyChart", 16}},
}

// TopSDKTable renders Table 4 (ct=false) or Table 5 (ct=true): per SDK
// category, the union of apps and the top SDKs, measured vs paper.
func TopSDKTable(ag *pipeline.Aggregates, ct bool, scale int) string {
	title := "Table 4: popular SDKs using WebViews"
	paperRows := paperTable4
	catApps := ag.CategoryWVApps
	if ct {
		title = "Table 5: popular SDKs using CTs"
		paperRows = paperTable5
		catApps = ag.CategoryCTApps
	}
	t := newTable(fmt.Sprintf("%s (scale 1/%d)", title, scale))
	t.row("SDK type", "total apps", "SDK", "apps", "paper apps", "paper/scale")

	// Order categories by measured union, descending, to mirror the paper.
	cats := make([]sdkindex.Category, 0, len(catApps))
	for cat := range catApps {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool {
		if catApps[cats[i]] != catApps[cats[j]] {
			return catApps[cats[i]] > catApps[cats[j]]
		}
		return cats[i] < cats[j]
	})
	for _, cat := range cats {
		if cat == sdkindex.Unknown {
			continue
		}
		top := ag.TopSDKs(cat, ct, 3)
		paper := paperRows[cat]
		for i, row := range top {
			total := ""
			if i == 0 {
				total = fmt.Sprint(catApps[cat])
			}
			pApps, pScaled := "-", "-"
			for _, p := range paper {
				if p.Name == row.Name {
					pApps = fmt.Sprint(p.Apps)
					pScaled = fmt.Sprint((p.Apps + scale/2) / scale)
				}
			}
			t.row(cat, total, row.Name, row.Apps, pApps, pScaled)
		}
	}
	return t.String()
}

// Table7 renders API-method usage against the paper's Table 7.
func Table7(ag *pipeline.Aggregates, scale int) string {
	t := newTable(fmt.Sprintf("Table 7: WebView/CT API usage (scale 1/%d)", scale))
	t.row("row", "apps", "via SDKs", "paper apps", "paper via SDKs", "ratio")
	emit := func(name string, apps, via int, key string) {
		p := paperTable7[key]
		t.row(name, apps, via, p[0], p[1], ratio(apps, p[0], scale))
	}
	emit("Apps using WebViews", ag.WebViewApps, ag.WebViewViaSDK, "apps_webview")
	for _, m := range pipeline.MethodOrder() {
		emit("  "+m, ag.MethodApps[m], ag.MethodViaSDKApps[m], m)
	}
	emit("Apps using CTs", ag.CTApps, ag.CTViaSDK, "apps_ct")
	emit("Apps using both", ag.BothApps, ag.BothViaSDK, "apps_both")
	return t.String()
}

// Figure3 renders the per-Play-category SDK-type distribution: for the ten
// Play categories with the most WebView-SDK (resp. CT-SDK) apps, the share
// of each SDK type.
func Figure3(ag *pipeline.Aggregates) string {
	var sb strings.Builder
	sb.WriteString(figure3Side(ag.PlayCategoryWV, "Figure 3a: WebView SDK use-cases per app category"))
	sb.WriteString(figure3Side(ag.PlayCategoryCT, "Figure 3b: CT SDK use-cases per app category"))
	return sb.String()
}

func figure3Side(data map[string]map[sdkindex.Category]int, title string) string {
	t := newTable(title)
	type row struct {
		play  string
		total int
	}
	var rows []row
	for play, m := range data {
		total := 0
		for _, n := range m {
			total += n
		}
		rows = append(rows, row{play, total})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].play < rows[j].play
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	header := []any{"app category", "apps"}
	for _, cat := range sdkindex.Categories {
		header = append(header, shortCat(cat))
	}
	t.row(header...)
	for _, r := range rows {
		cols := []any{r.play, r.total}
		for _, cat := range sdkindex.Categories {
			share := 0.0
			if r.total > 0 {
				share = float64(data[r.play][cat]) / float64(r.total)
			}
			cols = append(cols, fmt.Sprintf("%.0f%%", share*100))
		}
		t.row(cols...)
	}
	return t.String()
}

// Figure4 renders the WebView API-method heatmap per SDK category.
func Figure4(ag *pipeline.Aggregates) string {
	t := newTable("Figure 4: share of apps calling each WebView API method, per SDK type")
	header := []any{"SDK type", "apps"}
	for _, m := range pipeline.MethodOrder() {
		header = append(header, m)
	}
	t.row(header...)
	for _, cat := range sdkindex.Categories {
		n := ag.CategoryWVApps[cat]
		if n == 0 {
			continue
		}
		cols := []any{cat, n}
		for _, m := range pipeline.MethodOrder() {
			cols = append(cols, fmt.Sprintf("%.0f%%", ag.HeatmapRate(cat, m)*100))
		}
		t.row(cols...)
	}
	return t.String()
}

func shortCat(c sdkindex.Category) string {
	switch c {
	case sdkindex.Advertising:
		return "Ads"
	case sdkindex.Engagement:
		return "Engage"
	case sdkindex.DevTools:
		return "DevT"
	case sdkindex.Payments:
		return "Pay"
	case sdkindex.UserSupport:
		return "Supp"
	case sdkindex.Social:
		return "Social"
	case sdkindex.Utility:
		return "Util"
	case sdkindex.Authentication:
		return "Auth"
	case sdkindex.Hybrid:
		return "Hybrid"
	default:
		return "Unk"
	}
}

// LintTable renders the WebView misconfiguration prevalence found by the
// lint stage: per rule, the number of findings, the number of affected
// apps, and how many findings sit in SDK-attributed code. Rules appear in
// registry order; rows the run produced no findings for are kept, so the
// table shape is stable across corpora.
func LintTable(ag *pipeline.Aggregates) string {
	t := newTable("WebView misconfigurations (lint stage)")
	t.row("rule", "severity", "findings", "apps", "via SDK")
	for _, r := range webviewlint.Rules() {
		t.row(r.ID, r.Severity,
			ag.LintRuleFindings[r.ID], ag.LintRuleApps[r.ID], ag.LintRuleViaSDK[r.ID])
	}
	t.row("total", "", ag.LintFindings, ag.LintAppsFlagged, "")
	if len(ag.LintSDKFindings) > 0 {
		names := make([]string, 0, len(ag.LintSDKFindings))
		for n := range ag.LintSDKFindings {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if ag.LintSDKFindings[names[i]] != ag.LintSDKFindings[names[j]] {
				return ag.LintSDKFindings[names[i]] > ag.LintSDKFindings[names[j]]
			}
			return names[i] < names[j]
		})
		t.row("", "", "", "", "")
		t.row("top SDKs by findings", "", "", "", "")
		for i, n := range names {
			if i == 5 {
				break
			}
			t.row("  "+n, "", ag.LintSDKFindings[n], "", "")
		}
	}
	return t.String()
}
