package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/crux"
	"repro/internal/measure"
	"repro/internal/pageload"
	"repro/internal/sitereview"
)

// Table6 renders the hyperlink-behaviour classification against the
// paper's Table 6.
func Table6(t6 *core.Table6) string {
	t := newTable("Table 6: hyperlink behaviour in the top 1K apps")
	t.row("classification", "measured", "paper")
	t.row("Users can post links", t6.CanPostLinks, 38)
	t.row("  Link opens in browser", t6.OpensBrowser, 27)
	t.row("  Link opens in a WebView", t6.OpensWebView, 10)
	t.row("  Link opens in CT", t6.OpensCustomTab, 1)
	t.row("Users can not post links", t6.NoUserContent, 905)
	t.row("Browser apps", t6.BrowserApps, 9)
	t.row("Could not classify app", t6.Unclassifiable, 48)
	t.row("  Required a phone number", t6.RequiredPhone, 24)
	t.row("  App incompatibility error", t6.Incompatible, 22)
	t.row("  Required paid account", t6.RequiredPaid, 2)
	return t.String()
}

// Table8 renders the IAB deep-probe rows.
func Table8(rows []core.Table8Row) string {
	t := newTable("Table 8: WebView-based IAB injection behaviour")
	t.row("downloads", "app", "via", "bridges", "HTML/JS intent", "bridge intent")
	for _, r := range rows {
		t.row(humanCount(r.Downloads), r.Title, r.Surface,
			strings.Join(r.Bridges, " "), r.HTMLJSIntent, r.BridgeIntent)
	}
	return t.String()
}

// Table9 renders the Web-API traces collected by the controlled page.
func Table9(rows []core.Table8Row) string {
	t := newTable("Table 9: Web APIs accessed on the controlled page")
	t.row("app", "interface", "method")
	for _, r := range rows {
		if len(r.WebAPITraces) == 0 {
			continue
		}
		for i, tr := range r.WebAPITraces {
			name := ""
			if i == 0 {
				name = r.Title
			}
			t.row(name, tr.Interface, tr.Method)
		}
	}
	return t.String()
}

// Table9Traces renders raw measurement-server traces per app.
func Table9Traces(srv *measure.Server, apps map[string]string) string {
	t := newTable("Table 9: Web APIs accessed (collection server view)")
	t.row("app", "interface", "method")
	pkgs := make([]string, 0, len(apps))
	for pkg := range apps {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		for i, tr := range srv.ForApp(pkg) {
			name := ""
			if i == 0 {
				name = apps[pkg]
			}
			t.row(name, tr.Interface, tr.Method)
		}
	}
	return t.String()
}

// Figure6 renders the per-site-category endpoint distribution for one app.
func Figure6(res *crawler.Result, app, title string) string {
	t := newTable(fmt.Sprintf("Figure 6: endpoints contacted by %s's IAB per site type", title))
	kinds := []sitereview.Kind{
		sitereview.Tracker, sitereview.AdNetwork, sitereview.CDN,
		sitereview.OwnService, sitereview.Content,
	}
	header := []any{"site type", "avg endpoints"}
	for _, k := range kinds {
		header = append(header, string(k))
	}
	t.row(header...)
	avg := res.AverageEndpoints(app)
	for _, cat := range crux.Categories() {
		if avg[cat] == nil {
			continue
		}
		cols := []any{cat, fmt.Sprintf("%.1f", res.TotalAverage(app, cat))}
		for _, k := range kinds {
			cols = append(cols, fmt.Sprintf("%.1f", avg[cat][k]))
		}
		t.row(cols...)
	}
	return t.String()
}

// Figure7 renders the page-load-time comparison.
func Figure7(m pageload.Model, requests int) string {
	t := newTable(fmt.Sprintf("Figure 7: page load time by rendering path (%d-request page)", requests))
	t.row("path", "load time", "vs Custom Tab")
	times := m.Compare(requests)
	base := times[pageload.ModeCustomTab]
	for _, mode := range pageload.Modes {
		t.row(mode.String(), times[mode], fmt.Sprintf("%.2fx", float64(times[mode])/float64(base)))
	}
	t.row("", "", "")
	t.row("paper's relationship", "CT ≈ 2x faster than WebView", fmt.Sprintf("measured %.2fx", m.Speedup(pageload.ModeCustomTab, pageload.ModeWebView, requests)))
	return t.String()
}

func humanCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2gB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.3gM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.3gK", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}
