package report

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/urlextract"
)

func ep(kind, url, host string) urlextract.Endpoint {
	return urlextract.Endpoint{Kind: kind, URL: url, Host: host, FirstParty: true}
}

// TestAgreementMath pins the matching and vacuous-case conventions: exact
// hosts match by equality, partial prefixes by string prefix, and an empty
// side is vacuously perfect so precision/recall never divide by zero.
func TestAgreementMath(t *testing.T) {
	cases := []struct {
		name string
		eps  []urlextract.Endpoint
		dyn  []string
		want AgreementRow
	}{
		{
			name: "exact match both sides",
			eps:  []urlextract.Endpoint{ep(urlextract.KindFull, "https://api.example.com/v1", "api.example.com")},
			dyn:  []string{"api.example.com"},
			want: AgreementRow{Static: 1, Dynamic: 1, Both: 1, Precision: 1, Recall: 1},
		},
		{
			name: "zero dynamic hosts: recall vacuously 1",
			eps:  []urlextract.Endpoint{ep(urlextract.KindFull, "https://a.test/x", "a.test")},
			dyn:  nil,
			want: AgreementRow{Static: 1, Dynamic: 0, Both: 0, StaticOnly: 1, Precision: 0, Recall: 1},
		},
		{
			name: "zero static hosts: precision vacuously 1",
			eps:  nil,
			dyn:  []string{"tracker.test", "cdn.test"},
			want: AgreementRow{Static: 0, Dynamic: 2, DynamicOnly: 2, Precision: 1, Recall: 0},
		},
		{
			name: "dynamic-only hosts lower recall",
			eps:  []urlextract.Endpoint{ep(urlextract.KindFull, "https://a.test/x", "a.test")},
			dyn:  []string{"a.test", "b.test", "c.test", "d.test"},
			want: AgreementRow{Static: 1, Dynamic: 4, Both: 1, DynamicOnly: 3, Precision: 1, Recall: 0.25},
		},
		{
			name: "partial host prefix matches any dynamic host it prefixes",
			eps:  []urlextract.Endpoint{ep(urlextract.KindPrefix, "https://api.seg", "")},
			dyn:  []string{"api.segment.io", "api.segundo.test", "other.test"},
			want: AgreementRow{Static: 1, Dynamic: 3, Both: 1, DynamicOnly: 1, Precision: 1, Recall: 2.0 / 3},
		},
		{
			name: "prefix with complete authority carries a host, not a prefix",
			eps:  []urlextract.Endpoint{ep(urlextract.KindPrefix, "https://api.test/v1/", "api.test")},
			dyn:  []string{"api.test"},
			want: AgreementRow{Static: 1, Dynamic: 1, Both: 1, Precision: 1, Recall: 1},
		},
		{
			name: "case-insensitive on both sides",
			eps:  []urlextract.Endpoint{ep(urlextract.KindFull, "https://API.Test/", "API.Test")},
			dyn:  []string{"api.TEST"},
			want: AgreementRow{Static: 1, Dynamic: 1, Both: 1, Precision: 1, Recall: 1},
		},
		{
			name: "dynamic-kind endpoints contribute nothing",
			eps:  []urlextract.Endpoint{ep(urlextract.KindDynamic, "", "")},
			dyn:  []string{"x.test"},
			want: AgreementRow{Static: 0, Dynamic: 1, DynamicOnly: 1, Precision: 1, Recall: 0},
		},
		{
			name: "duplicate hosts collapse to one pattern",
			eps: []urlextract.Endpoint{
				ep(urlextract.KindFull, "https://a.test/x", "a.test"),
				ep(urlextract.KindFull, "https://a.test/y", "a.test"),
			},
			dyn:  []string{"a.test", "a.test"},
			want: AgreementRow{Static: 1, Dynamic: 1, Both: 1, Precision: 1, Recall: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Agreement("app", tc.eps, tc.dyn)
			tc.want.Package = "app"
			if got != tc.want {
				t.Errorf("Agreement = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestAgreementTableTotals(t *testing.T) {
	rows := []AgreementRow{
		{Package: "a", Static: 2, Dynamic: 2, Both: 2, Precision: 1, Recall: 1},
		{Package: "b", Static: 1, Dynamic: 3, Both: 0, StaticOnly: 1, DynamicOnly: 3, Precision: 0, Recall: 0},
	}
	out := AgreementTable(rows)
	for _, want := range []string{"a ", "b ", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Totals: static 3, dynamic 5, both 2 → precision 0.67, recall 0.40.
	last := strings.TrimSpace(out[strings.Index(out, "total"):])
	for _, want := range []string{"0.67", "0.40"} {
		if !strings.Contains(last, want) {
			t.Errorf("totals row %q missing %s", last, want)
		}
	}
	// Empty input: the vacuous totals conventions hold.
	empty := AgreementTable(nil)
	if !strings.Contains(empty, "1.00") {
		t.Errorf("empty table totals should be vacuously perfect:\n%s", empty)
	}
}

// TestSDKAgreement pins the per-SDK aggregation: patterns bucket by SDK
// attribution (first-party code in its own bucket), confirmation and
// explained-host counts sum across apps, and rows come back sorted by SDK
// name so the table is deterministic.
func TestSDKAgreement(t *testing.T) {
	sdkEP := func(sdk, kind, url, host string) urlextract.Endpoint {
		return urlextract.Endpoint{Kind: kind, URL: url, Host: host, SDK: sdk}
	}
	apps := []AppEndpoints{
		{
			Package: "a",
			Endpoints: []urlextract.Endpoint{
				ep(urlextract.KindFull, "https://own.test/v1", "own.test"),
				sdkEP("Segment", urlextract.KindFull, "https://api.segment.io/t", "api.segment.io"),
				sdkEP("Segment", urlextract.KindPrefix, "https://cdn.seg", ""),
			},
			DynamicHosts: []string{"api.segment.io", "cdn.segment.io", "tracker.test"},
		},
		{
			Package: "b",
			Endpoints: []urlextract.Endpoint{
				sdkEP("Segment", urlextract.KindFull, "https://api.segment.io/t", "api.segment.io"),
				sdkEP("Branch", urlextract.KindFull, "https://api.branch.io/v1", "api.branch.io"),
			},
			DynamicHosts: []string{"cdn.other.test"},
		},
	}
	rows := SDKAgreement(apps)
	want := []SDKAgreementRow{
		// First-party: app a's own.test, unconfirmed.
		{SDK: "(first-party)", Apps: 1, Static: 1, Confirmed: 0, Explained: 0, Precision: 0},
		// Branch: app b only, unconfirmed.
		{SDK: "Branch", Apps: 1, Static: 1, Confirmed: 0, Explained: 0, Precision: 0},
		// Segment: app a confirms both patterns (exact + prefix) explaining
		// two dynamic hosts; app b's copy goes unconfirmed → 2/3.
		{SDK: "Segment", Apps: 2, Static: 3, Confirmed: 2, Explained: 2, Precision: 2.0 / 3},
	}
	if len(rows) != len(want) {
		t.Fatalf("SDKAgreement returned %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}

	out := SDKAgreementTable(rows)
	for _, s := range []string{"(first-party)", "Branch", "Segment", "total", "0.40"} {
		// Totals: 5 static, 2 confirmed → precision 0.40.
		if !strings.Contains(out, s) {
			t.Errorf("SDK table missing %q:\n%s", s, out)
		}
	}
	if !strings.Contains(SDKAgreementTable(nil), "1.00") {
		t.Error("empty SDK table totals should be vacuously perfect")
	}
}

func TestURLTableSummary(t *testing.T) {
	apps := []pipeline.AppResult{
		{Package: "a", Endpoints: []urlextract.Endpoint{
			ep(urlextract.KindFull, "https://api.test/v1", "api.test"),
			ep(urlextract.KindPrefix, "https://cdn.te", ""),
		}},
		{Package: "b", Endpoints: []urlextract.Endpoint{
			{Kind: urlextract.KindFull, URL: "https://api.test/v2", Host: "api.test", SDK: "Segment"},
		}},
		{Package: "c"},
	}
	out := URLTable(apps)
	rowValue := func(label string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), label) {
				f := strings.Fields(line)
				return f[len(f)-1]
			}
		}
		return ""
	}
	for label, want := range map[string]string{
		"apps with endpoints": "2",
		"endpoints total":     "3",
		"kind=full":           "2",
		"kind=prefix":         "1",
		"kind=dynamic":        "0",
		"via SDK":             "1",
		"api.test":            "2", // reached from both apps
	} {
		if got := rowValue(label); got != want {
			t.Errorf("URLTable row %q = %q, want %q\n%s", label, got, want, out)
		}
	}
}
