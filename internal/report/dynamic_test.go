package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/crux"
	"repro/internal/measure"
	"repro/internal/pageload"
	"repro/internal/sitereview"
)

func TestTable6Rendering(t *testing.T) {
	t6 := &core.Table6{
		CanPostLinks: 38, OpensBrowser: 27, OpensWebView: 10, OpensCustomTab: 1,
		NoUserContent: 905, BrowserApps: 9,
		Unclassifiable: 48, RequiredPhone: 24, Incompatible: 22, RequiredPaid: 2,
	}
	out := Table6(t6)
	for _, want := range []string{"Table 6", "38", "905", "Required a phone number", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 missing %q:\n%s", want, out)
		}
	}
}

func sampleRows() []core.Table8Row {
	return []core.Table8Row{
		{
			Package: "com.facebook.katana", Title: "Facebook", Downloads: 8_400_000_000,
			Surface: "Post", InjectedJSCount: 4,
			Bridges:      []string{"fbpayIAWBridge", "_AutofillExtensions"},
			HTMLJSIntent: "Returns DOM tag counts", BridgeIntent: "Meta Checkout",
			Redirector: "lm.facebook.com/l.php",
			WebAPITraces: []measure.Trace{
				{Interface: "Document", Method: "getElementById"},
				{Interface: "Element", Method: "insertBefore"},
			},
		},
		{
			Package: "com.snapchat.android", Title: "Snapchat", Downloads: 2_340_000_000,
			Surface: "Story", HTMLJSIntent: "No injection", BridgeIntent: "No injection",
		},
	}
}

func TestTable8Rendering(t *testing.T) {
	out := Table8(sampleRows())
	for _, want := range []string{"Table 8", "8.4B", "Facebook", "fbpayIAWBridge", "Snapchat", "No injection"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table8 missing %q:\n%s", want, out)
		}
	}
}

func TestTable9Rendering(t *testing.T) {
	out := Table9(sampleRows())
	for _, want := range []string{"Table 9", "Facebook", "getElementById", "insertBefore"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table9 missing %q:\n%s", want, out)
		}
	}
	// Snapchat has no traces and must not appear with rows.
	if strings.Contains(out, "Snapchat") {
		t.Error("Table9 renders apps without traces")
	}
}

func TestTable9TracesRendering(t *testing.T) {
	srv := measure.NewServer()
	out := Table9Traces(srv, map[string]string{"com.x": "X App"})
	if !strings.Contains(out, "Table 9") {
		t.Errorf("missing title:\n%s", out)
	}
}

func TestFigure6Rendering(t *testing.T) {
	res := &crawler.Result{
		Visits: []crawler.Visit{
			{
				App:  "kik.android",
				Site: crux.Site{Host: "news-01.example", Category: "News"},
				Mode: "webview", Context: "wv-1",
				ExternalHosts: []string{"ads.mopub.com", "a.cedexis-radar.net"},
				EndpointKinds: map[sitereview.Kind]int{sitereview.AdNetwork: 1, sitereview.Tracker: 1},
			},
			{
				App:  "kik.android",
				Site: crux.Site{Host: "search-01.example", Category: "Search"},
				Mode: "webview", Context: "wv-2",
				ExternalHosts: []string{"ads.mopub.com"},
				EndpointKinds: map[sitereview.Kind]int{sitereview.AdNetwork: 1},
			},
		},
	}
	out := Figure6(res, "kik.android", "Kik")
	for _, want := range []string{"Figure 6", "Kik", "News", "Search", "2.0", "1.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure6 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7Rendering(t *testing.T) {
	out := Figure7(pageload.Default(), 12)
	for _, want := range []string{"Figure 7", "Custom Tab", "WebView", "1.00x", "2x faster"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure7 missing %q:\n%s", want, out)
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int64]string{
		8_400_000_000: "8.4B",
		289_000_000:   "289M",
		97_500_000:    "97.5M",
		1_500:         "1.5K",
		42:            "42",
	}
	for in, want := range cases {
		if got := humanCount(in); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", in, got, want)
		}
	}
}
