package report

import (
	"strings"
	"testing"

	"repro/internal/android"
	"repro/internal/pipeline"
	"repro/internal/sdkindex"
)

func sampleAggregates() *pipeline.Aggregates {
	res := &pipeline.Result{
		Apps: []pipeline.AppResult{
			{
				Package: "a.one", PlayCategory: "Puzzle", UsesWebView: true, UsesCT: true,
				Methods:       []string{android.MethodLoadURL, android.MethodAddJavascriptInterface},
				MethodsViaSDK: []string{android.MethodLoadURL},
				WebViewSDKs: []pipeline.SDKHit{{
					SDK: "AppLovin", Category: sdkindex.Advertising,
					Methods: []string{android.MethodLoadURL, android.MethodAddJavascriptInterface},
				}},
				CTSDKs: []pipeline.SDKHit{{SDK: "Facebook", Category: sdkindex.Social, CT: true}},
			},
			{
				Package: "a.two", PlayCategory: "Education", UsesWebView: true,
				Methods:       []string{android.MethodLoadDataWithBaseURL},
				MethodsViaSDK: []string{android.MethodLoadDataWithBaseURL},
				WebViewSDKs: []pipeline.SDKHit{{
					SDK: "Zendesk", Category: sdkindex.UserSupport,
					Methods: []string{android.MethodLoadDataWithBaseURL},
				}},
			},
			{Package: "a.three", PlayCategory: "Tools"},
		},
	}
	return pipeline.Aggregate(res)
}

func TestTable2Rendering(t *testing.T) {
	f := pipeline.Funnel{Snapshot: 65072, OnPlay: 24545, Popular: 1983, Filtered: 1468, Broken: 2, Analyzed: 1466}
	out := Table2(f, 100)
	for _, want := range []string{"Table 2", "AndroZoo", "65072", "6507222", "1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Rendering(t *testing.T) {
	out := Table3(sampleAggregates())
	for _, want := range []string{"Advertising", "User Support", "Total", "125", "45", "34"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
}

func TestTopSDKTables(t *testing.T) {
	ag := sampleAggregates()
	t4 := TopSDKTable(ag, false, 100)
	if !strings.Contains(t4, "AppLovin") || !strings.Contains(t4, "27397") {
		t.Errorf("Table 4 missing AppLovin row:\n%s", t4)
	}
	t5 := TopSDKTable(ag, true, 100)
	if !strings.Contains(t5, "Facebook") || !strings.Contains(t5, "23234") {
		t.Errorf("Table 5 missing Facebook row:\n%s", t5)
	}
}

func TestTable7Rendering(t *testing.T) {
	out := Table7(sampleAggregates(), 100)
	for _, want := range []string{"loadUrl", "addJavascriptInterface", "postUrl", "Apps using CTs", "77930"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table7 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Rendering(t *testing.T) {
	out := Figure3(sampleAggregates())
	for _, want := range []string{"Figure 3a", "Figure 3b", "Puzzle", "Education"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Rendering(t *testing.T) {
	out := Figure4(sampleAggregates())
	if !strings.Contains(out, "Advertising") || !strings.Contains(out, "100%") {
		t.Errorf("Figure4 output:\n%s", out)
	}
	// User-support SDK row must show loadDataWithBaseURL at 100%.
	if !strings.Contains(out, "User Support") {
		t.Errorf("Figure4 missing User Support row:\n%s", out)
	}
}
