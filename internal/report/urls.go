package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/urlextract"
)

// URLTable summarises the static URL-extraction stage: how many apps carry
// statically provable endpoints, the kind breakdown (full URL / constant
// prefix / dynamic), SDK attribution, and the hosts reached from the most
// apps. Input order is the pipeline's package order, so the table is
// deterministic for a given corpus.
func URLTable(apps []pipeline.AppResult) string {
	t := newTable("Static URL endpoints (interprocedural extraction)")
	t.row("metric", "value")
	var total, full, prefix, dynamic, viaSDK, withEPs int
	hostApps := make(map[string]map[string]bool)
	for i := range apps {
		app := &apps[i]
		if len(app.Endpoints) > 0 {
			withEPs++
		}
		for _, ep := range app.Endpoints {
			total++
			switch ep.Kind {
			case urlextract.KindFull:
				full++
			case urlextract.KindPrefix:
				prefix++
			default:
				dynamic++
			}
			if !ep.FirstParty {
				viaSDK++
			}
			if ep.Host != "" {
				if hostApps[ep.Host] == nil {
					hostApps[ep.Host] = make(map[string]bool, 1)
				}
				hostApps[ep.Host][app.Package] = true
			}
		}
	}
	t.row("apps with endpoints", withEPs)
	t.row("endpoints total", total)
	t.row("  kind=full", full)
	t.row("  kind=prefix", prefix)
	t.row("  kind=dynamic", dynamic)
	t.row("  via SDK", viaSDK)
	if len(hostApps) > 0 {
		hosts := make([]string, 0, len(hostApps))
		for h := range hostApps {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool {
			if len(hostApps[hosts[i]]) != len(hostApps[hosts[j]]) {
				return len(hostApps[hosts[i]]) > len(hostApps[hosts[j]])
			}
			return hosts[i] < hosts[j]
		})
		t.row("", "")
		t.row("top hosts by app count", "")
		for i, h := range hosts {
			if i == 10 {
				break
			}
			t.row("  "+h, len(hostApps[h]))
		}
	}
	return t.String()
}

// AgreementRow is one app's static↔dynamic host agreement: the statically
// extracted endpoint hosts compared against the hosts the app actually
// contacted during the controlled dynamic visit.
type AgreementRow struct {
	Package string
	// Static counts distinct static host patterns (exact hosts plus partial
	// host prefixes from Kind "prefix" endpoints); Dynamic counts distinct
	// observed hosts.
	Static  int
	Dynamic int
	// Both counts static patterns confirmed by at least one dynamic host;
	// StaticOnly is the rest. DynamicOnly counts observed hosts no static
	// pattern explains.
	Both        int
	StaticOnly  int
	DynamicOnly int
	// Precision = Both/Static, Recall = explained-dynamic/Dynamic. An empty
	// side is vacuously perfect (no static hosts → precision 1; no dynamic
	// hosts → recall 1), so rows never divide by zero.
	Precision float64
	Recall    float64
}

// Agreement computes one app's row. A static exact host matches a dynamic
// host by equality; a static partial prefix (a Kind "prefix" endpoint cut
// mid-host, e.g. "https://api.ex") matches any dynamic host it is a string
// prefix of. Hosts compare lowercased on both sides.
func Agreement(pkg string, eps []urlextract.Endpoint, dynamicHosts []string) AgreementRow {
	exact := make(map[string]bool)
	prefixes := make(map[string]bool)
	for _, ep := range eps {
		if ep.Host != "" {
			exact[strings.ToLower(ep.Host)] = true
			continue
		}
		if ep.Kind == urlextract.KindPrefix {
			if hp, ok := urlextract.HostPrefixOf(ep.URL); ok && hp != "" {
				prefixes[hp] = true
			}
		}
	}
	dyn := make(map[string]bool, len(dynamicHosts))
	for _, h := range dynamicHosts {
		if h != "" {
			dyn[strings.ToLower(h)] = true
		}
	}

	prefixMatches := func(host string) bool {
		for p := range prefixes {
			if strings.HasPrefix(host, p) {
				return true
			}
		}
		return false
	}

	row := AgreementRow{Package: pkg, Static: len(exact) + len(prefixes), Dynamic: len(dyn)}
	for h := range exact {
		if dyn[h] {
			row.Both++
		}
	}
	for p := range prefixes {
		for h := range dyn {
			if strings.HasPrefix(h, p) {
				row.Both++
				break
			}
		}
	}
	row.StaticOnly = row.Static - row.Both
	explained := 0
	for h := range dyn {
		if exact[h] || prefixMatches(h) {
			explained++
		}
	}
	row.DynamicOnly = row.Dynamic - explained

	row.Precision = 1
	if row.Static > 0 {
		row.Precision = float64(row.Both) / float64(row.Static)
	}
	row.Recall = 1
	if row.Dynamic > 0 {
		row.Recall = float64(explained) / float64(row.Dynamic)
	}
	return row
}

// AppEndpoints pairs one app's statically extracted endpoints with the
// hosts it contacted during the controlled dynamic visit; it is the input
// to the per-SDK aggregation.
type AppEndpoints struct {
	Package      string
	Endpoints    []urlextract.Endpoint
	DynamicHosts []string
}

// SDKAgreementRow aggregates agreement across apps for one SDK (or the
// app's own first-party code). Dynamic traffic carries no SDK label, so
// recall is only defined at the app level; here each dynamic host is
// attributed to the SDK whose static pattern explains it.
type SDKAgreementRow struct {
	SDK string
	// Apps counts apps contributing at least one static pattern for this
	// SDK; Static sums those per-app pattern counts.
	Apps   int
	Static int
	// Confirmed counts static patterns matched by the same app's dynamic
	// traffic; Explained counts dynamic hosts those patterns account for.
	Confirmed int
	Explained int
	// Precision = Confirmed/Static (vacuously 1 when Static is 0).
	Precision float64
}

// sdkBucket maps one endpoint to its aggregation key.
func sdkBucket(ep urlextract.Endpoint) string {
	if ep.FirstParty || ep.SDK == "" {
		return "(first-party)"
	}
	return ep.SDK
}

// SDKAgreement computes the per-SDK agreement rows over all probed apps,
// using the same pattern semantics as Agreement (exact hosts by equality,
// partial prefixes by string prefix, lowercased both sides). Rows sort by
// SDK name, so the table is deterministic regardless of input order.
func SDKAgreement(apps []AppEndpoints) []SDKAgreementRow {
	acc := make(map[string]*SDKAgreementRow)
	for _, app := range apps {
		dyn := make(map[string]bool, len(app.DynamicHosts))
		for _, h := range app.DynamicHosts {
			if h != "" {
				dyn[strings.ToLower(h)] = true
			}
		}
		type patterns struct {
			exact    map[string]bool
			prefixes map[string]bool
		}
		perSDK := make(map[string]*patterns)
		for _, ep := range app.Endpoints {
			key := sdkBucket(ep)
			p := perSDK[key]
			if p == nil {
				p = &patterns{exact: make(map[string]bool), prefixes: make(map[string]bool)}
				perSDK[key] = p
			}
			if ep.Host != "" {
				p.exact[strings.ToLower(ep.Host)] = true
				continue
			}
			if ep.Kind == urlextract.KindPrefix {
				if hp, ok := urlextract.HostPrefixOf(ep.URL); ok && hp != "" {
					p.prefixes[hp] = true
				}
			}
		}
		for key, p := range perSDK {
			static := len(p.exact) + len(p.prefixes)
			if static == 0 {
				continue
			}
			r := acc[key]
			if r == nil {
				r = &SDKAgreementRow{SDK: key}
				acc[key] = r
			}
			r.Apps++
			r.Static += static
			for h := range p.exact {
				if dyn[h] {
					r.Confirmed++
				}
			}
			for pre := range p.prefixes {
				for h := range dyn {
					if strings.HasPrefix(h, pre) {
						r.Confirmed++
						break
					}
				}
			}
			for h := range dyn {
				if p.exact[h] {
					r.Explained++
					continue
				}
				for pre := range p.prefixes {
					if strings.HasPrefix(h, pre) {
						r.Explained++
						break
					}
				}
			}
		}
	}
	rows := make([]SDKAgreementRow, 0, len(acc))
	for _, r := range acc {
		r.Precision = 1
		if r.Static > 0 {
			r.Precision = float64(r.Confirmed) / float64(r.Static)
		}
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].SDK < rows[j].SDK })
	return rows
}

// SDKAgreementTable renders the per-SDK aggregation plus a totals line.
func SDKAgreementTable(rows []SDKAgreementRow) string {
	t := newTable("Static vs dynamic agreement by SDK attribution")
	t.row("sdk", "apps", "static", "confirmed", "dyn-explained", "precision")
	var static, confirmed, explained int
	for _, r := range rows {
		t.row(r.SDK, r.Apps, r.Static, r.Confirmed, r.Explained,
			fmt.Sprintf("%.2f", r.Precision))
		static += r.Static
		confirmed += r.Confirmed
		explained += r.Explained
	}
	prec := 1.0
	if static > 0 {
		prec = float64(confirmed) / float64(static)
	}
	t.row("total", "", static, confirmed, explained, fmt.Sprintf("%.2f", prec))
	return t.String()
}

// AgreementTable renders the cross-validation rows plus a totals line.
// Row order is the caller's (the dynamic study already sorts by downloads),
// so the table is byte-identical across worker and device counts.
func AgreementTable(rows []AgreementRow) string {
	t := newTable("Static vs dynamic endpoint-host agreement (controlled IAB visits)")
	t.row("app", "static", "dynamic", "both", "static-only", "dyn-only", "precision", "recall")
	var static, dynamic, both, staticOnly, dynOnly int
	for _, r := range rows {
		t.row(r.Package, r.Static, r.Dynamic, r.Both, r.StaticOnly, r.DynamicOnly,
			fmt.Sprintf("%.2f", r.Precision), fmt.Sprintf("%.2f", r.Recall))
		static += r.Static
		dynamic += r.Dynamic
		both += r.Both
		staticOnly += r.StaticOnly
		dynOnly += r.DynamicOnly
	}
	prec, rec := 1.0, 1.0
	if static > 0 {
		prec = float64(both) / float64(static)
	}
	if dynamic > 0 {
		rec = float64(dynamic-dynOnly) / float64(dynamic)
	}
	t.row("total", static, dynamic, both, staticOnly, dynOnly,
		fmt.Sprintf("%.2f", prec), fmt.Sprintf("%.2f", rec))
	return t.String()
}
