// Package customtabs simulates Chrome Custom Tabs (CTs): the recommended
// way for apps to show third-party web content. The properties the paper
// contrasts with WebViews (Table 1) are modelled directly:
//
//   - Isolation: the hosting app cannot inject script or read page content.
//     The only feedback channel is the CustomTabsCallback's navigation and
//     engagement signals.
//   - Shared browser state: all CT sessions on a device run in the user's
//     default browser, sharing its cookie jar, so sessions persist across
//     apps (the "stay logged in to Facebook" effect, §4.1.6).
//   - Pre-initialisation: Warmup/MayLaunchUrl let the browser pre-start,
//     which is why CTs load pages roughly twice as fast (Figure 7).
//   - Secure UI: the toolbar always shows the TLS origin; an app can pick
//     a toolbar colour but not forge the URL.
package customtabs

import (
	"context"
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"sync"

	"repro/internal/browsersim"
	"repro/internal/netlog"
	"repro/internal/safebrowsing"
)

// EngagementSignal is one CustomTabsCallback event (navigation lifecycle
// and scroll-engagement signals, §4.1.2).
type EngagementSignal struct {
	Event string // "NAVIGATION_STARTED", "NAVIGATION_FINISHED", "TAB_SHOWN", ...
	URL   string
}

// Callback receives engagement signals; it is the app's ONLY view into
// the tab (no DOM access, no script injection).
type Callback func(EngagementSignal)

// Browser is the device's default browser providing CT support. One
// Browser instance per device; its cookie jar is shared by every CT
// session and by ordinary browser navigation.
type Browser struct {
	// Name is the browser's package (e.g. "com.android.chrome").
	Name string
	// Client carries the shared cookie jar.
	Client *http.Client
	// Log receives network events for all sessions.
	Log *netlog.Log
	// SafeBrowsing is the browser's threat list. Unlike a WebView, a
	// Custom Tab always consults it — the embedding app cannot opt out.
	SafeBrowsing *safebrowsing.List

	mu        sync.Mutex
	warmed    bool
	sessions  int
	mayLaunch map[string]bool
}

// NewBrowser creates a browser with a fresh shared cookie jar.
func NewBrowser(name string, log *netlog.Log) *Browser {
	jar, _ := cookiejar.New(nil)
	return &Browser{
		Name:      name,
		Client:    &http.Client{Jar: jar},
		Log:       log,
		mayLaunch: make(map[string]bool),
	}
}

// Warmup pre-initialises the browser process (CustomTabsClient.warmup).
func (b *Browser) Warmup() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.warmed = true
}

// Warmed reports whether the browser has been pre-initialised.
func (b *Browser) Warmed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.warmed
}

// MayLaunchURL hints a likely navigation (speculative loading).
func (b *Browser) MayLaunchURL(url string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mayLaunch[url] = true
}

// PreLoaded reports whether a URL was hinted before launch.
func (b *Browser) PreLoaded(url string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mayLaunch[url]
}

// Intent is the CustomTabsIntent produced by its Builder: UI options plus
// the callback. There is deliberately no injection surface here.
type Intent struct {
	ToolbarColor string
	ShowTitle    bool
	Callback     Callback
	AppPackage   string // the launching app, for attribution in logs
	// Partial configures a partial (inline, resizable) tab; nil launches
	// a full-screen tab. See partial.go.
	Partial *PartialConfig
}

// Builder mirrors CustomTabsIntent.Builder.
type Builder struct {
	intent Intent
}

// NewBuilder starts a builder.
func NewBuilder() *Builder { return &Builder{} }

// SetToolbarColor sets the toolbar colour.
func (b *Builder) SetToolbarColor(color string) *Builder {
	b.intent.ToolbarColor = color
	return b
}

// SetShowTitle toggles the page-title display.
func (b *Builder) SetShowTitle(show bool) *Builder {
	b.intent.ShowTitle = show
	return b
}

// SetCallback attaches the engagement callback.
func (b *Builder) SetCallback(cb Callback) *Builder {
	b.intent.Callback = cb
	return b
}

// SetAppPackage records the launching app.
func (b *Builder) SetAppPackage(pkg string) *Builder {
	b.intent.AppPackage = pkg
	return b
}

// Build finalises the intent.
func (b *Builder) Build() Intent { return b.intent }

// Session is one open Custom Tab.
type Session struct {
	URL     string
	Title   string
	TLSLock bool // the secure UI indicator (always present for https)
	// page is intentionally unexported: the hosting app has no access to
	// the page contents — that is the security property of CTs.
	page           *browsersim.Page
	greatestScroll int
}

// LaunchURL opens url in a Custom Tab (CustomTabsIntent.launchUrl). The
// page loads inside the browser context: shared cookies, browser UA, no
// app-controlled headers or injection.
func (b *Browser) LaunchURL(ctx context.Context, intent Intent, url string) (*Session, error) {
	b.mu.Lock()
	b.sessions++
	id := fmt.Sprintf("ct-%s-%d", b.Name, b.sessions)
	b.mu.Unlock()

	emit := func(ev string) {
		if intent.Callback != nil {
			intent.Callback(EngagementSignal{Event: ev, URL: url})
		}
	}
	emit("NAVIGATION_STARTED")
	if b.SafeBrowsing != nil {
		if v := b.SafeBrowsing.Check(url); v.Blocked() {
			emit("NAVIGATION_FAILED")
			return nil, &safebrowsing.BlockedError{URL: url, Verdict: v}
		}
	}
	loader := &browsersim.Loader{
		Client:         b.Client,
		Log:            b.Log,
		Context:        id,
		ExecuteScripts: true,
		UserAgent: "Mozilla/5.0 (Linux; Android 12; Pixel 3) AppleWebKit/537.36 " +
			"(KHTML, like Gecko) Chrome/110.0 Mobile Safari/537.36",
	}
	page, err := loader.Load(ctx, url)
	if err != nil {
		emit("NAVIGATION_FAILED")
		return nil, fmt.Errorf("customtabs: %w", err)
	}
	emit("NAVIGATION_FINISHED")
	emit("TAB_SHOWN")
	return &Session{
		URL:     url,
		Title:   page.Doc.Title,
		TLSLock: len(url) > 8 && url[:8] == "https://",
		page:    page,
	}, nil
}
