package customtabs

import (
	"context"
	"fmt"
)

// Partial Custom Tabs (§5, "innovations like Partial CTs, which enable
// developers to launch resizable inline CTs in response to native ads, as
// showcased by Google in 2023"): a Custom Tab that occupies only part of
// the screen, resizable by the user, while keeping every CT security
// property — browser context, shared cookies, no injection surface.

// PartialConfig sizes a partial tab.
type PartialConfig struct {
	// InitialHeightPx is the tab's starting height
	// (CustomTabsIntent.Builder#setInitialActivityHeightPx).
	InitialHeightPx int
	// Resizable lets the user drag the tab to full height.
	Resizable bool
}

// SetInitialActivityHeight configures the intent for a partial tab.
func (b *Builder) SetInitialActivityHeight(px int, resizable bool) *Builder {
	b.intent.Partial = &PartialConfig{InitialHeightPx: px, Resizable: resizable}
	return b
}

// PartialSession is an open partial Custom Tab.
type PartialSession struct {
	*Session
	HeightPx  int
	Resizable bool
}

// LaunchPartialURL opens url in a partial Custom Tab. The page loads in
// the same browser context as full tabs (shared cookies, Safe Browsing
// always on); only the presentation differs.
func (b *Browser) LaunchPartialURL(ctx context.Context, intent Intent, url string) (*PartialSession, error) {
	if intent.Partial == nil {
		return nil, fmt.Errorf("customtabs: intent has no partial configuration")
	}
	if intent.Partial.InitialHeightPx <= 0 {
		return nil, fmt.Errorf("customtabs: partial height %dpx invalid", intent.Partial.InitialHeightPx)
	}
	sess, err := b.LaunchURL(ctx, intent, url)
	if err != nil {
		return nil, err
	}
	return &PartialSession{
		Session:   sess,
		HeightPx:  intent.Partial.InitialHeightPx,
		Resizable: intent.Partial.Resizable,
	}, nil
}

// Resize drags the partial tab to a new height; on non-resizable tabs it
// is ignored and reports false.
func (p *PartialSession) Resize(px int) bool {
	if !p.Resizable || px <= 0 {
		return false
	}
	p.HeightPx = px
	return true
}

// Engagement signals (§4.1.2: "CTs natively measure similar user
// engagement signals"): scroll progress is reported to the app through
// the CustomTabsCallback without exposing page content.

// ReportScroll records user scroll progress in the tab and emits the
// engagement signal (GREATEST_SCROLL_PERCENTAGE increases monotonically,
// as in the real EngagementSignalsCallback).
func (s *Session) ReportScroll(percent int, cb Callback) {
	if percent < 0 {
		percent = 0
	}
	if percent > 100 {
		percent = 100
	}
	if percent <= s.greatestScroll {
		return
	}
	s.greatestScroll = percent
	if cb != nil {
		cb(EngagementSignal{Event: fmt.Sprintf("GREATEST_SCROLL_PERCENTAGE:%d", percent), URL: s.URL})
	}
}

// GreatestScroll returns the deepest scroll position reported.
func (s *Session) GreatestScroll() int { return s.greatestScroll }
