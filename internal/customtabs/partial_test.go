package customtabs

import (
	"context"
	"strings"
	"testing"

	"repro/internal/netlog"
)

func TestLaunchPartialURL(t *testing.T) {
	srv := site(t)
	b := browserFor(srv, nil)
	intent := NewBuilder().
		SetInitialActivityHeight(800, true).
		SetAppPackage("com.ads.host").
		Build()
	p, err := b.LaunchPartialURL(context.Background(), intent, srv.URL+"/")
	if err != nil {
		t.Fatalf("LaunchPartialURL: %v", err)
	}
	if p.HeightPx != 800 || !p.Resizable {
		t.Errorf("partial = %+v", p)
	}
	// Full CT semantics carry over: the page loaded in the browser context.
	if p.Title != "Login" {
		t.Errorf("title = %q", p.Title)
	}
}

func TestPartialRequiresConfig(t *testing.T) {
	srv := site(t)
	b := browserFor(srv, nil)
	if _, err := b.LaunchPartialURL(context.Background(), Intent{}, srv.URL+"/"); err == nil {
		t.Error("partial launch without config accepted")
	}
	bad := NewBuilder().SetInitialActivityHeight(0, true).Build()
	if _, err := b.LaunchPartialURL(context.Background(), bad, srv.URL+"/"); err == nil {
		t.Error("zero-height partial accepted")
	}
}

func TestPartialResize(t *testing.T) {
	srv := site(t)
	b := browserFor(srv, nil)
	resizable := NewBuilder().SetInitialActivityHeight(600, true).Build()
	p, err := b.LaunchPartialURL(context.Background(), resizable, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Resize(1200) || p.HeightPx != 1200 {
		t.Errorf("resize failed: %+v", p)
	}
	if p.Resize(-5) {
		t.Error("negative resize accepted")
	}
	fixed := NewBuilder().SetInitialActivityHeight(600, false).Build()
	p2, err := b.LaunchPartialURL(context.Background(), fixed, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Resize(1200) || p2.HeightPx != 600 {
		t.Error("non-resizable tab resized")
	}
}

func TestPartialSharesBrowserCookies(t *testing.T) {
	srv := site(t)
	b := browserFor(srv, nil)
	ctx := context.Background()
	// A full tab logs in; a subsequent partial tab reuses the session.
	if _, err := b.LaunchURL(ctx, Intent{}, srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	intent := NewBuilder().SetInitialActivityHeight(700, true).Build()
	p, err := b.LaunchPartialURL(ctx, intent, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Title != "Feed" {
		t.Errorf("partial tab title = %q, want Feed (shared session)", p.Title)
	}
}

func TestEngagementScrollSignals(t *testing.T) {
	srv := site(t)
	log := netlog.New()
	b := browserFor(srv, log)
	var signals []string
	cb := func(s EngagementSignal) { signals = append(signals, s.Event) }
	sess, err := b.LaunchURL(context.Background(), Intent{Callback: cb}, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	sess.ReportScroll(25, cb)
	sess.ReportScroll(60, cb)
	sess.ReportScroll(40, cb)  // regression: no signal (monotone)
	sess.ReportScroll(150, cb) // clamped to 100
	var scrolls []string
	for _, s := range signals {
		if strings.HasPrefix(s, "GREATEST_SCROLL_PERCENTAGE:") {
			scrolls = append(scrolls, s)
		}
	}
	want := []string{
		"GREATEST_SCROLL_PERCENTAGE:25",
		"GREATEST_SCROLL_PERCENTAGE:60",
		"GREATEST_SCROLL_PERCENTAGE:100",
	}
	if len(scrolls) != len(want) {
		t.Fatalf("scroll signals = %v", scrolls)
	}
	for i := range want {
		if scrolls[i] != want[i] {
			t.Errorf("signal %d = %s, want %s", i, scrolls[i], want[i])
		}
	}
	if sess.GreatestScroll() != 100 {
		t.Errorf("GreatestScroll = %d", sess.GreatestScroll())
	}
}
