package customtabs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/netlog"
)

func site(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	visits := 0
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		visits++
		if _, err := r.Cookie("login"); err != nil {
			http.SetCookie(w, &http.Cookie{Name: "login", Value: "user1"})
			w.Write([]byte(`<html><head><title>Login</title></head><body>please log in</body></html>`))
			return
		}
		w.Write([]byte(`<html><head><title>Feed</title></head><body>welcome back</body></html>`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func browserFor(srv *httptest.Server, log *netlog.Log) *Browser {
	b := NewBrowser("com.android.chrome", log)
	b.Client.Transport = srv.Client().Transport
	return b
}

func TestLaunchURLAndSignals(t *testing.T) {
	srv := site(t)
	log := netlog.New()
	b := browserFor(srv, log)

	var signals []string
	intent := NewBuilder().
		SetToolbarColor("#336699").
		SetShowTitle(true).
		SetCallback(func(s EngagementSignal) { signals = append(signals, s.Event) }).
		SetAppPackage("com.example.host").
		Build()

	sess, err := b.LaunchURL(context.Background(), intent, srv.URL+"/")
	if err != nil {
		t.Fatalf("LaunchURL: %v", err)
	}
	if sess.Title != "Login" {
		t.Errorf("title = %q", sess.Title)
	}
	want := []string{"NAVIGATION_STARTED", "NAVIGATION_FINISHED", "TAB_SHOWN"}
	if len(signals) != len(want) {
		t.Fatalf("signals = %v", signals)
	}
	for i := range want {
		if signals[i] != want[i] {
			t.Errorf("signal %d = %s, want %s", i, signals[i], want[i])
		}
	}
}

func TestSharedCookiesAcrossSessionsAndApps(t *testing.T) {
	srv := site(t)
	b := browserFor(srv, nil)
	ctx := context.Background()

	// First visit (from app A) logs in.
	s1, err := b.LaunchURL(ctx, Intent{AppPackage: "app.a"}, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Title != "Login" {
		t.Errorf("first visit title = %q", s1.Title)
	}
	// Second visit, from a different app, reuses the browser session: the
	// user stays logged in (Table 1's UX property).
	s2, err := b.LaunchURL(ctx, Intent{AppPackage: "app.b"}, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Title != "Feed" {
		t.Errorf("second visit title = %q, want Feed (session persisted)", s2.Title)
	}
}

func TestNoInjectionSurface(t *testing.T) {
	// The compile-time API offers no script/bridge entry points; verify
	// the runtime object also hides the page.
	srv := site(t)
	b := browserFor(srv, nil)
	sess, err := b.LaunchURL(context.Background(), Intent{}, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if sess.page == nil {
		t.Fatal("internal page missing")
	}
	// The exported surface is only URL/Title/TLSLock.
	if sess.URL == "" || sess.Title == "" {
		t.Error("session metadata empty")
	}
}

func TestTLSLockIndicator(t *testing.T) {
	srv := site(t)
	b := browserFor(srv, nil)
	sess, err := b.LaunchURL(context.Background(), Intent{}, srv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	// httptest URLs are http://; the lock must be absent.
	if sess.TLSLock {
		t.Error("TLS lock shown for http page")
	}
}

func TestWarmupAndMayLaunch(t *testing.T) {
	b := NewBrowser("chrome", nil)
	if b.Warmed() {
		t.Error("browser warmed before Warmup")
	}
	b.Warmup()
	if !b.Warmed() {
		t.Error("Warmup had no effect")
	}
	b.MayLaunchURL("https://example.com/")
	if !b.PreLoaded("https://example.com/") {
		t.Error("MayLaunchURL not recorded")
	}
	if b.PreLoaded("https://other.example/") {
		t.Error("unhinted URL reported preloaded")
	}
}

func TestLaunchFailureSignalsCallback(t *testing.T) {
	b := NewBrowser("chrome", nil)
	var events []string
	intent := NewBuilder().SetCallback(func(s EngagementSignal) { events = append(events, s.Event) }).Build()
	if _, err := b.LaunchURL(context.Background(), intent, "http://127.0.0.1:1/x"); err == nil {
		t.Fatal("unreachable launch succeeded")
	}
	if len(events) != 2 || events[1] != "NAVIGATION_FAILED" {
		t.Errorf("events = %v", events)
	}
}

func TestNetlogAttribution(t *testing.T) {
	srv := site(t)
	log := netlog.New()
	b := browserFor(srv, log)
	if _, err := b.LaunchURL(context.Background(), Intent{}, srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	events := log.Events()
	if len(events) == 0 {
		t.Fatal("no events logged")
	}
	// CT requests carry NO X-Requested-With: they come from the browser,
	// not the app — one of the fingerprinting differences the paper notes.
	for _, e := range events {
		if e.Header["X-Requested-With"] != "" {
			t.Error("CT request stamped with app package")
		}
		if e.Context == "" {
			t.Error("event missing CT session context")
		}
	}
}
