package urlextract

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/android"
	"repro/internal/callgraph"
	"repro/internal/dalvik"
	"repro/internal/sdkindex"
)

// Endpoint is one statically recovered network destination: a sink call
// site plus the best string the dataflow engine could prove reaches it.
type Endpoint struct {
	Class  string `json:"class"`
	Method string `json:"method"`
	API    string `json:"api"`
	// Kind is "full" (exact URL known), "prefix" (constant prefix known,
	// tail dynamic) or "dynamic" (nothing provable).
	Kind string `json:"kind"`
	URL  string `json:"url,omitempty"`
	// Host is the complete authority host when determinable. Prefix
	// endpoints cut mid-host leave it empty; compare with HostPrefixOf.
	Host        string `json:"host,omitempty"`
	SDK         string `json:"sdk,omitempty"`
	SDKCategory string `json:"sdk_category,omitempty"`
	FirstParty  bool   `json:"first_party"`
}

// Endpoint kinds.
const (
	KindFull    = "full"
	KindPrefix  = "prefix"
	KindDynamic = "dynamic"
)

// Config bounds the engine. Zero values select the defaults.
type Config struct {
	// MaxStack caps the abstract operand stack; deeper pushes slide the
	// window (oldest operand dropped), keeping trailing-arg consumption
	// exact. Default 48.
	MaxStack int
	// MaxTemplates caps parameter-dependent sink templates per method
	// summary. Default 16.
	MaxTemplates int
}

const (
	defaultMaxStack     = 48
	defaultMaxTemplates = 16
	// engineVersion feeds the fingerprint; bump on any semantic change so
	// cached pipeline results re-extract.
	engineVersion = 1
)

func (c *Config) normalize() {
	if c.MaxStack <= 0 {
		c.MaxStack = defaultMaxStack
	}
	if c.MaxTemplates <= 0 {
		c.MaxTemplates = defaultMaxTemplates
	}
}

// Extractor runs the interprocedural extraction. It is stateless across
// calls and safe for concurrent use by multiple pipeline workers.
type Extractor struct {
	cfg Config
	fp  string
}

// New returns an extractor with the given bounds.
func New(cfg Config) *Extractor {
	cfg.normalize()
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"urlextract:v%d|prefix=%d|stack=%d|templates=%d|sinks=%s",
		engineVersion, maxPrefix, cfg.MaxStack, cfg.MaxTemplates, sinkFingerprint)))
	return &Extractor{cfg: cfg, fp: hex.EncodeToString(h[:])[:16]}
}

// Fingerprint identifies the engine semantics and bounds; it is mixed
// into the pipeline's result-cache key so warm runs skip extraction.
func (e *Extractor) Fingerprint() string { return e.fp }

// Modelled framework types.
const (
	classURL           = "java.net.URL"
	classStringBuilder = "java.lang.StringBuilder"
	classString        = "java.lang.String"
	ctorName           = "<init>"
)

// sinkFingerprint names the sink set inside the engine fingerprint.
const sinkFingerprint = "loadUrl,postUrl,loadDataWithBaseURL,launchUrl,URL.<init>"

var (
	slot0   = []int{0}
	slot1   = []int{1}
	slots01 = []int{0, 1}
	slots04 = []int{0, 4}
)

// sinkSlots returns the argument slots of t that may carry a URL, or nil
// when t is not a sink. postUrl's URL is nominally slot 0, but the corpus
// builder pushes the constant immediately before the call, which lands it
// in the trailing slot — check both.
func sinkSlots(g *callgraph.Graph, t dalvik.MethodRef) []int {
	switch t.Name {
	case android.MethodLoadURL:
		if isWebViewReceiver(g, t.Class) {
			return slot0
		}
	case android.MethodPostURL:
		if isWebViewReceiver(g, t.Class) {
			return slots01
		}
	case android.MethodLoadDataWithBaseURL:
		if isWebViewReceiver(g, t.Class) {
			return slots04
		}
	case android.MethodLaunchURL:
		if t.Class == android.CustomTabsIntentClass {
			return slot1
		}
	case ctorName:
		if t.Class == classURL {
			return slot0
		}
	}
	return nil
}

func isWebViewReceiver(g *callgraph.Graph, name string) bool {
	return name == android.WebViewClass || g.IsWebViewClass(name)
}

func apiName(t dalvik.MethodRef) string {
	cls := t.Class
	if i := strings.LastIndexByte(cls, '.'); i >= 0 {
		cls = cls[i+1:]
	}
	return cls + "." + t.Name
}

// arity counts the parameters in a compact signature like "(String,int)void".
func arity(sig string) int {
	i := strings.IndexByte(sig, '(')
	j := strings.IndexByte(sig, ')')
	if i < 0 || j <= i+1 {
		return 0
	}
	return strings.Count(sig[i+1:j], ",") + 1
}

// Summary is what callers see of a method: the lattice value it returns
// and the parameter-dependent sink templates awaiting instantiation.
type Summary struct {
	Ret   Value
	Sinks []Template
}

// Template is a sink whose URL argument still depends on a parameter of
// the summarised method; Site indexes the run's site table.
type Template struct {
	Site int
	Val  Value
}

type sinkSite struct {
	ref      dalvik.MethodRef
	api      string
	val      Value
	grounded bool
}

type rawEndpoint struct {
	ref dalvik.MethodRef
	api string
	val Value
}

type run struct {
	ex        *Extractor
	g         *callgraph.Graph
	summaries map[dalvik.MethodRef]Summary
	inSCC     map[dalvik.MethodRef]bool
	sites     []*sinkSite
	raw       []rawEndpoint
}

// Extract analyses every method in the graph's dex, propagates summaries
// bottom-up over the call graph's SCC condensation, and returns the sink
// endpoints reachable from the app's entry points. exclude lists classes
// to drop (the paper's deep-link handler exclusion, §3.1.3); idx, when
// non-nil, attributes endpoints first-party-vs-SDK. The result is
// deterministic for a given dex.
func (e *Extractor) Extract(g *callgraph.Graph, exclude map[string]bool, idx *sdkindex.Index) []Endpoint {
	dex := g.Dex()
	r := &run{
		ex:        e,
		g:         g,
		summaries: make(map[dalvik.MethodRef]Summary, dex.MethodCount()),
		inSCC:     make(map[dalvik.MethodRef]bool),
	}
	body := make(map[dalvik.MethodRef]*dalvik.Method, dex.MethodCount())
	order := make([]dalvik.MethodRef, 0, dex.MethodCount())
	for ci := range dex.Classes {
		c := &dex.Classes[ci]
		for mi := range c.Methods {
			m := &c.Methods[mi]
			ref := m.Ref(c.Name)
			if _, dup := body[ref]; dup {
				continue
			}
			body[ref] = m
			order = append(order, ref)
		}
	}
	for _, scc := range condense(order, body, g) {
		recursive := len(scc) > 1 || callsSelf(scc[0], body[scc[0]], g)
		if recursive {
			for _, ref := range scc {
				r.inSCC[ref] = true
			}
		}
		for _, ref := range scc {
			m := &mach{r: r, ref: ref, code: body[ref].Code,
				arity: arity(ref.Signature), cfg: e.cfg}
			r.summaries[ref] = m.run()
		}
		if recursive {
			for _, ref := range scc {
				delete(r.inSCC, ref)
			}
		}
	}
	// Sink templates no caller ever grounded degrade to their own site:
	// the constant prefix is real, the parameter tail is not knowable.
	for _, s := range r.sites {
		if !s.grounded {
			r.raw = append(r.raw, rawEndpoint{ref: s.ref, api: s.api,
				val: Value{Prefix: s.val.Prefix, Tail: TailDynamic}})
		}
	}
	return r.finalize(exclude, idx)
}

func (r *run) finalize(exclude map[string]bool, idx *sdkindex.Index) []Endpoint {
	reach := r.g.Reachable()
	seen := make(map[Endpoint]bool, len(r.raw))
	var out []Endpoint
	for _, raw := range r.raw {
		if exclude[raw.ref.Class] || !reach[raw.ref] {
			continue
		}
		ep := classify(raw)
		attribute(&ep, idx)
		if seen[ep] {
			continue
		}
		seen[ep] = true
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.API != b.API {
			return a.API < b.API
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.URL < b.URL
	})
	return out
}

func classify(raw rawEndpoint) Endpoint {
	ep := Endpoint{Class: raw.ref.Class, Method: raw.ref.Name, API: raw.api}
	v := raw.val
	switch {
	case v.Tail == TailNone:
		ep.Kind = KindFull
		ep.URL = NormalizeURL(v.Prefix)
		ep.Host = HostOf(ep.URL)
	case v.Prefix != "":
		ep.Kind = KindPrefix
		ep.URL = v.Prefix
		if _, partial := HostPrefixOf(v.Prefix); !partial {
			ep.Host = HostOf(v.Prefix)
		}
	default:
		ep.Kind = KindDynamic
	}
	return ep
}

func attribute(ep *Endpoint, idx *sdkindex.Index) {
	if idx != nil {
		if sdk, ok := idx.Lookup(dalvik.PackageOf(ep.Class)); ok && !sdk.Excluded {
			ep.SDK = sdk.Name
			ep.SDKCategory = string(sdk.Category)
			return
		}
	}
	ep.FirstParty = true
}

// callEdges returns the in-file methods ref's body invokes, resolved, in
// code order without duplicates.
func callEdges(m *dalvik.Method, g *callgraph.Graph) []dalvik.MethodRef {
	var out []dalvik.MethodRef
	var seen map[dalvik.MethodRef]bool
	for _, ins := range m.Code {
		if !ins.Op.IsInvoke() {
			continue
		}
		resolved, ok := g.Resolve(ins.Target)
		if !ok {
			continue
		}
		if seen == nil {
			seen = make(map[dalvik.MethodRef]bool, 4)
		}
		if seen[resolved] {
			continue
		}
		seen[resolved] = true
		out = append(out, resolved)
	}
	return out
}

func callsSelf(ref dalvik.MethodRef, m *dalvik.Method, g *callgraph.Graph) bool {
	for _, edge := range callEdges(m, g) {
		if edge == ref {
			return true
		}
	}
	return false
}

// condense runs an iterative Tarjan over the caller→callee edges and
// returns the SCCs callees-first (reverse topological order), which is
// exactly the order bottom-up summary propagation needs. Root and edge
// order follow the dex file, so the output is deterministic. Methods are
// numbered by dex position once up front so the walk runs on integer-
// indexed slices — hashing three-string MethodRef keys per step dominated
// the extraction profile.
func condense(order []dalvik.MethodRef, body map[dalvik.MethodRef]*dalvik.Method, g *callgraph.Graph) [][]dalvik.MethodRef {
	n := len(order)
	id := make(map[dalvik.MethodRef]int, n)
	for i, ref := range order {
		id[ref] = i
	}
	edges := make([][]int, n)
	for i, ref := range order {
		ce := callEdges(body[ref], g)
		if len(ce) == 0 {
			continue
		}
		es := make([]int, 0, len(ce))
		for _, w := range ce {
			if j, ok := id[w]; ok {
				es = append(es, j)
			}
		}
		edges[i] = es
	}

	index := make([]int, n) // discovery order + 1; 0 = unvisited
	low := make([]int, n)
	onstack := make([]bool, n)
	var stack []int
	var sccs [][]dalvik.MethodRef
	next := 1

	type frame struct {
		v, i int
	}
	for _, root := range order {
		rid := id[root]
		if index[rid] != 0 {
			continue
		}
		index[rid] = next
		low[rid] = next
		next++
		stack = append(stack, rid)
		onstack[rid] = true
		frames := []frame{{v: rid}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(edges[f.v]) {
				w := edges[f.v][f.i]
				f.i++
				if index[w] == 0 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onstack[w] = true
					frames = append(frames, frame{v: w})
				} else if onstack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []dalvik.MethodRef
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					scc = append(scc, order[w])
					if w == v {
						break
					}
				}
				// Restore discovery order inside the component.
				for i, j := 0, len(scc)-1; i < j; i, j = i+1, j-1 {
					scc[i], scc[j] = scc[j], scc[i]
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// absState is the abstract machine state entering an instruction: the
// symbolic operand stack, the last invoke result (which doubles as the
// live StringBuilder accumulator, mirroring the decompiler's lastVar),
// the pending new-instance type and whether the previous instruction was
// an invoke (move-result threading).
type absState struct {
	live        bool
	stack       []Value
	last        Value
	pendingNew  string
	afterInvoke bool
}

func (s absState) clone() absState {
	if s.stack != nil {
		s.stack = append([]Value(nil), s.stack...)
	}
	return s
}

func statesEqual(a, b absState) bool {
	if a.live != b.live || a.last != b.last ||
		a.pendingNew != b.pendingNew || a.afterInvoke != b.afterInvoke ||
		len(a.stack) != len(b.stack) {
		return false
	}
	for i := range a.stack {
		if a.stack[i] != b.stack[i] {
			return false
		}
	}
	return true
}

// joinStates merges two in-states at a control-flow join: stacks align at
// the top and truncate to the shorter height, values join pointwise.
func joinStates(a, b absState) absState {
	n := len(a.stack)
	if len(b.stack) < n {
		n = len(b.stack)
	}
	stack := make([]Value, n)
	for i := 0; i < n; i++ {
		stack[i] = Join(a.stack[len(a.stack)-n+i], b.stack[len(b.stack)-n+i])
	}
	pn := a.pendingNew
	if pn != b.pendingNew {
		pn = ""
	}
	return absState{live: true, stack: stack, last: Join(a.last, b.last),
		pendingNew: pn, afterInvoke: a.afterInvoke && b.afterInvoke}
}

// mach interprets one method body.
type mach struct {
	r     *run
	ref   dalvik.MethodRef
	code  []dalvik.Instruction
	arity int
	cfg   Config
	sum   Summary
	in    []absState
}

// run computes the fixpoint of per-pc in-states (phase A), then walks the
// reachable pcs once in ascending order with emission enabled (phase B).
// Splitting the phases means each sink site and call-site instantiation
// fires exactly once, on the final joined state — not on every
// intermediate state the worklist visits.
func (m *mach) run() Summary {
	m.sum = Summary{Ret: Dynamic()}
	if len(m.code) == 0 {
		return m.sum
	}
	straight := true
	for i := range m.code {
		if op := m.code[i].Op; op == dalvik.OpIfZ || op == dalvik.OpGoto {
			straight = false
			break
		}
	}
	if straight {
		// Branchless body (the common case): every pc has exactly one
		// predecessor, so the fixpoint is a single forward pass and phases
		// A and B collapse — no per-pc states, no clones, no worklist.
		st := absState{live: true, last: Dynamic()}
		for pc := 0; pc < len(m.code); pc++ {
			if m.code[pc].Op == dalvik.OpReturnValue {
				m.sum.Ret = st.last
			}
			var s1 int
			st, s1, _ = m.exec(st, pc, true)
			if s1 < 0 {
				break
			}
		}
		return m.sum
	}
	m.in = make([]absState, len(m.code))
	m.in[0] = absState{live: true, last: Dynamic()}
	work := []int{0}
	// The lattice is finite but the prefix component is wide; the step
	// budget is the bounded-widening backstop that keeps adversarial
	// (fuzzed) control flow from spinning.
	budget := len(m.code)*64 + 256
	for len(work) > 0 && budget > 0 {
		budget--
		pc := work[0]
		work = work[1:]
		out, s1, s2 := m.exec(m.in[pc].clone(), pc, false)
		for _, s := range [2]int{s1, s2} {
			if s < 0 || s >= len(m.code) || s == pc && m.code[pc].Op == dalvik.OpGoto {
				continue
			}
			if m.joinInto(s, out) {
				work = append(work, s)
			}
		}
	}
	var ret Value
	haveRet := false
	for pc := 0; pc < len(m.code); pc++ {
		if !m.in[pc].live {
			continue
		}
		st := m.in[pc].clone()
		if m.code[pc].Op == dalvik.OpReturnValue {
			if haveRet {
				ret = Join(ret, st.last)
			} else {
				ret, haveRet = st.last, true
			}
		}
		m.exec(st, pc, true)
	}
	if haveRet {
		m.sum.Ret = ret
	}
	return m.sum
}

func (m *mach) joinInto(pc int, out absState) bool {
	if !m.in[pc].live {
		m.in[pc] = out.clone()
		return true
	}
	joined := joinStates(m.in[pc], out)
	if statesEqual(m.in[pc], joined) {
		return false
	}
	m.in[pc] = joined
	return true
}

// exec interprets the instruction at pc over st (already cloned) and
// returns the out-state plus up to two successor pcs (-1 = none; scalars
// rather than a slice, which the fixpoint loop would otherwise allocate
// per instruction executed). With emitting set, sink hits and
// callee-template instantiations are recorded.
func (m *mach) exec(st absState, pc int, emitting bool) (absState, int, int) {
	ins := m.code[pc]
	s1, s2 := pc+1, -1
	wasInvoke := false
	switch ins.Op {
	case dalvik.OpConstString:
		m.push(&st, Const(ins.Str))
	case dalvik.OpConstInt:
		m.push(&st, Const(strconv.FormatInt(ins.Int, 10)))
	case dalvik.OpNewInstance:
		st.pendingNew = ins.Type
	case dalvik.OpInvokeVirtual, dalvik.OpInvokeStatic, dalvik.OpInvokeDirect, dalvik.OpInvokeInterface:
		wasInvoke = m.invoke(&st, ins, emitting)
	case dalvik.OpMoveResult:
		if st.afterInvoke {
			m.push(&st, st.last)
		} else {
			// A branched-to move-result has no adjacent invoke; the
			// decompiler renders the placeholder __result.
			st.last = Dynamic()
			m.push(&st, st.last)
		}
	case dalvik.OpIfZ:
		s2 = pc + int(ins.Int)
	case dalvik.OpGoto:
		s1 = pc + int(ins.Int)
	case dalvik.OpReturnVoid, dalvik.OpReturnValue, dalvik.OpThrow:
		s1 = -1
	}
	st.afterInvoke = wasInvoke
	return st, s1, s2
}

func (m *mach) push(st *absState, v Value) {
	if len(st.stack) >= m.cfg.MaxStack {
		copy(st.stack, st.stack[1:])
		st.stack[len(st.stack)-1] = v
		return
	}
	st.stack = append(st.stack, v)
}

// takeArgs consumes up to ar trailing operands (the most recent operand
// is the last argument) and fills missing leading slots with the
// enclosing method's own parameters — the decompiler renders those slots
// as a0, a1, … placeholders, which is exactly parameter passthrough.
func (m *mach) takeArgs(st *absState, ar int) []Value {
	args := make([]Value, ar)
	take := ar
	if len(st.stack) < take {
		take = len(st.stack)
	}
	base := len(st.stack) - take
	for i := 0; i < take; i++ {
		args[ar-take+i] = st.stack[base+i]
	}
	st.stack = st.stack[:base]
	for i := 0; i < ar-take; i++ {
		if i < m.arity {
			args[i] = Param(i)
		} else {
			args[i] = Dynamic()
		}
	}
	return args
}

// invoke interprets one invoke instruction in place and reports whether a
// directly following move-result captures its result (constructors do
// not: the decompiler renders the placeholder __result there).
func (m *mach) invoke(st *absState, ins dalvik.Instruction, emitting bool) bool {
	t := ins.Target
	ar := arity(t.Signature)
	if ins.Op == dalvik.OpInvokeDirect && t.Name == ctorName && st.pendingNew == t.Class {
		st.pendingNew = ""
		switch t.Class {
		case classStringBuilder:
			if ar >= 1 {
				args := m.takeArgs(st, ar)
				st.last = args[0]
			} else {
				st.last = Const("")
			}
		case classURL:
			args := m.takeArgs(st, ar)
			if emitting {
				m.emitSink(t, args)
			}
			st.last = Dynamic()
		default:
			// Constructor operands come from caller registers in the
			// builder idiom; leave the stack alone so a preceding URL
			// constant stays available for the call it actually feeds.
			st.last = Dynamic()
		}
		return false
	}
	switch {
	case t.Class == classStringBuilder && t.Name == "append":
		args := m.takeArgs(st, ar)
		if len(args) > 0 {
			st.last = Concat(st.last, args[0])
		}
		return true
	case t.Class == classStringBuilder && t.Name == "toString":
		m.takeArgs(st, ar)
		return true // the result is the accumulated text already in last
	case t.Class == classString && t.Name == "concat":
		args := m.takeArgs(st, ar)
		if len(args) > 0 {
			st.last = Concat(st.last, args[0])
		} else {
			st.last = Dynamic()
		}
		return true
	}
	args := m.takeArgs(st, ar)
	if emitting {
		if sinkSlots(m.r.g, t) != nil {
			m.emitSink(t, args)
		}
	}
	st.last = Dynamic()
	if resolved, ok := m.r.g.Resolve(t); ok && !m.r.inSCC[resolved] {
		if sum, have := m.r.summaries[resolved]; have {
			st.last = substitute(sum.Ret, args)
			if emitting {
				m.instantiate(sum, args)
			}
		}
	}
	return true
}

// substitute rewrites a callee-relative value into caller terms by
// binding the parameter tail to the actual argument.
func substitute(v Value, args []Value) Value {
	if v.Tail != TailParam {
		return v
	}
	if v.Param < 0 || v.Param >= len(args) {
		return Value{Prefix: v.Prefix, Tail: TailDynamic}
	}
	return Concat(Value{Prefix: v.Prefix}, args[v.Param])
}

// emitSink classifies the URL argument of a sink call: exact constants
// and dynamic values become endpoints immediately, parameter-dependent
// values become summary templates for callers to ground.
func (m *mach) emitSink(t dalvik.MethodRef, args []Value) {
	slots := sinkSlots(m.r.g, t)
	var v Value
	chosen := false
	for _, s := range slots {
		if s < len(args) && args[s].Tail == TailNone {
			v, chosen = args[s], true
			break
		}
	}
	if !chosen {
		for _, s := range slots {
			if s < len(args) && args[s].Tail == TailParam {
				v, chosen = args[s], true
				break
			}
		}
	}
	if !chosen {
		if len(slots) == 0 || slots[0] >= len(args) {
			return
		}
		v = args[slots[0]]
	}
	if v.Tail == TailParam {
		if len(m.sum.Sinks) >= m.cfg.MaxTemplates {
			return
		}
		id := len(m.r.sites)
		m.r.sites = append(m.r.sites, &sinkSite{ref: m.ref, api: apiName(t), val: v})
		m.sum.Sinks = append(m.sum.Sinks, Template{Site: id, Val: v})
		return
	}
	m.r.raw = append(m.r.raw, rawEndpoint{ref: m.ref, api: apiName(t), val: v})
}

// instantiate grounds a callee's sink templates with the actual
// arguments at this call site. Values that resolve emit at the original
// (callee) site — that is where the request happens; values still
// depending on one of our own parameters re-template into this method's
// summary for the next caller up.
func (m *mach) instantiate(sum Summary, args []Value) {
	for _, t := range sum.Sinks {
		v := substitute(t.Val, args)
		if v.Tail == TailParam {
			if len(m.sum.Sinks) < m.cfg.MaxTemplates {
				m.sum.Sinks = append(m.sum.Sinks, Template{Site: t.Site, Val: v})
			}
			continue
		}
		site := m.r.sites[t.Site]
		site.grounded = true
		m.r.raw = append(m.r.raw, rawEndpoint{ref: site.ref, api: site.api, val: v})
	}
}
