package urlextract

import (
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/callgraph"
	"repro/internal/dalvik"
	"repro/internal/sdkindex"
)

func TestConcat(t *testing.T) {
	cases := []struct {
		a, b, want Value
	}{
		{Const("https://"), Const("x.com"), Const("https://x.com")},
		{Const("https://"), Param(0), Value{Prefix: "https://", Tail: TailParam}},
		{Const("a"), Dynamic(), Value{Prefix: "a", Tail: TailDynamic}},
		{Param(1), Const(""), Param(1)},
		{Param(1), Const("x"), Value{Tail: TailDynamic, Param: 0}},
		{Dynamic(), Const("x"), Dynamic()},
	}
	for i, c := range cases {
		if got := Concat(c.a, c.b); got != c.want {
			t.Errorf("case %d: Concat(%+v, %+v) = %+v, want %+v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	a := Const("https://api.example.com/v1")
	b := Const("https://api.example.com/v2")
	if got := Join(a, b); got.Prefix != "https://api.example.com/v" || got.Tail != TailDynamic {
		t.Errorf("Join const/const = %+v", got)
	}
	if got := Join(a, a); got != a {
		t.Errorf("Join identity = %+v", got)
	}
	p := Value{Prefix: "https://", Tail: TailParam, Param: 2}
	if got := Join(p, p); got != p {
		t.Errorf("Join param identity = %+v", got)
	}
	if got := Join(p, Param(1)); got.Tail != TailDynamic {
		t.Errorf("Join differing params = %+v", got)
	}
	// Commutativity on a small sample.
	vals := []Value{a, b, p, Param(1), Dynamic(), Const("")}
	for _, x := range vals {
		for _, y := range vals {
			if Join(x, y) != Join(y, x) {
				t.Errorf("Join not commutative for %+v, %+v", x, y)
			}
		}
	}
}

func TestNormalizeURL(t *testing.T) {
	// Scheme and host lowercase, default ports drop, the path is
	// preserved byte-for-byte.
	cases := map[string]string{
		"HTTPS://API.Example.com/Path?Q=1": "https://api.example.com/Path?Q=1",
		"https://api.example.com:443/x":    "https://api.example.com/x",
		"http://api.example.com:80":        "http://api.example.com",
		"http://api.example.com:8080/x":    "http://api.example.com:8080/x",
		"about:blank":                      "about:blank",
		"not a url":                        "not a url",
		"https://HOST.example":             "https://host.example",
	}
	for in, want := range cases {
		got := NormalizeURL(in)
		if got != want {
			t.Errorf("NormalizeURL(%q) = %q, want %q", in, got, want)
		}
		if again := NormalizeURL(got); again != got {
			t.Errorf("NormalizeURL not idempotent: %q -> %q -> %q", in, got, again)
		}
	}
}

func TestHostHelpers(t *testing.T) {
	if got := HostOf("https://Api.Example.com:443/x"); got != "api.example.com" {
		t.Errorf("HostOf = %q", got)
	}
	if h, partial := HostPrefixOf("https://api.ex"); !partial || h != "api.ex" {
		t.Errorf("HostPrefixOf cut mid-host = %q, %v", h, partial)
	}
	if _, partial := HostPrefixOf("https://api.example.com/pa"); partial {
		t.Error("HostPrefixOf treated a complete authority as partial")
	}
	if _, partial := HostPrefixOf("no scheme"); partial {
		t.Error("HostPrefixOf accepted a non-URL")
	}
}

// activity wraps a class body in an Activity subclass whose onCreate is an
// entry point, so the endpoints are reachable.
func extract(t *testing.T, dex *dalvik.File, exclude map[string]bool, idx *sdkindex.Index) []Endpoint {
	t.Helper()
	return New(Config{}).Extract(callgraph.Build(dex), exclude, idx)
}

func TestExtractDirectConstructor(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("HTTPS://API.Example.com/v1"),
			dalvik.NewInstance("java.net.URL"),
			dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 {
		t.Fatalf("endpoints = %+v", eps)
	}
	ep := eps[0]
	if ep.Kind != KindFull || ep.URL != "https://api.example.com/v1" ||
		ep.Host != "api.example.com" || ep.API != "URL.<init>" ||
		ep.Class != "com.app.Main" || ep.Method != "onCreate" || !ep.FirstParty {
		t.Errorf("endpoint = %+v", ep)
	}
}

func TestExtractHelperPassthrough(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("https://helper.example/api"),
			dalvik.InvokeStatic("com.app.net.Api", "open", "(String)void"),
		)
	b.Class("com.app.net.Api", android.ObjectClass, dalvik.AccPublic).
		Method("open", "(String)void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.NewInstance("java.net.URL"),
			dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
			dalvik.Return(),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 {
		t.Fatalf("endpoints = %+v", eps)
	}
	ep := eps[0]
	// The endpoint belongs to the sink site (the helper), grounded by the
	// caller's constant.
	if ep.Class != "com.app.net.Api" || ep.Method != "open" ||
		ep.Kind != KindFull || ep.URL != "https://helper.example/api" {
		t.Errorf("endpoint = %+v", ep)
	}
}

func TestExtractConcatBuilder(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.NewInstance("java.lang.StringBuilder"),
			dalvik.InvokeDirect("java.lang.StringBuilder", "<init>", "()void"),
			dalvik.ConstString("https://cdn.example"),
			dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.ConstString("/assets/app.js"),
			dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeVirtual("java.lang.StringBuilder", "toString", "()String"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.NewInstance("java.net.URL"),
			dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 || eps[0].Kind != KindFull || eps[0].URL != "https://cdn.example/assets/app.js" {
		t.Fatalf("endpoints = %+v", eps)
	}
}

func TestExtractPrefixTemplate(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.InvokeStatic("com.app.net.Api", "track", "(String)void"),
		)
	b.Class("com.app.net.Api", android.ObjectClass, dalvik.AccPublic).
		Method("track", "(String)void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.NewInstance("java.lang.StringBuilder"),
			dalvik.InvokeDirect("java.lang.StringBuilder", "<init>", "()void"),
			dalvik.ConstString("https://t.example/e?id="),
			dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
			dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
			dalvik.InvokeVirtual("java.lang.StringBuilder", "toString", "()String"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.NewInstance("java.net.URL"),
			dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
			dalvik.Return(),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 {
		t.Fatalf("endpoints = %+v", eps)
	}
	ep := eps[0]
	if ep.Kind != KindPrefix || ep.URL != "https://t.example/e?id=" ||
		ep.Host != "t.example" || ep.Class != "com.app.net.Api" || ep.Method != "track" {
		t.Errorf("endpoint = %+v", ep)
	}
}

func TestExtractReturnsConstantSummary(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.InvokeStatic("com.app.net.Api", "base", "()String"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
		)
	b.Class("com.app.net.Api", android.ObjectClass, dalvik.AccPublic).
		Method("base", "()String", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.NewInstance("java.lang.StringBuilder"),
			dalvik.InvokeDirect("java.lang.StringBuilder", "<init>", "()void"),
			dalvik.ConstString("https://home.example/"),
			dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
			dalvik.InvokeVirtual("java.lang.StringBuilder", "toString", "()String"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.Instruction{Op: dalvik.OpReturnValue},
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 || eps[0].Kind != KindFull || eps[0].URL != "https://home.example/" ||
		eps[0].Class != "com.app.Main" || eps[0].API != "WebView.loadUrl" {
		t.Fatalf("endpoints = %+v", eps)
	}
}

func TestExtractBuilderIdiomKeepsConstant(t *testing.T) {
	// The const-string precedes a custom WebView constructor; the ctor must
	// not consume it, it feeds the loadUrl that follows.
	b := dalvik.NewBuilder()
	b.Class("com.app.SdkWebView", android.WebViewClass, dalvik.AccPublic)
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("https://cdn.app/content"),
			dalvik.NewInstance("com.app.SdkWebView"),
			dalvik.InvokeDirect("com.app.SdkWebView", "<init>", "(Context)void"),
			dalvik.InvokeVirtual("com.app.SdkWebView", android.MethodLoadURL, "(String)void"),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 || eps[0].Kind != KindFull || eps[0].URL != "https://cdn.app/content" {
		t.Fatalf("endpoints = %+v", eps)
	}
}

func TestExtractBranchJoin(t *testing.T) {
	// if (…) url = ".../a" else url = ".../b" — the two paths join to a
	// common prefix with a dynamic tail.
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.Instruction{Op: dalvik.OpIfZ, Int: 3},
			dalvik.ConstString("https://x.example/a"),
			dalvik.Instruction{Op: dalvik.OpGoto, Int: 2},
			dalvik.ConstString("https://x.example/b"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 {
		t.Fatalf("endpoints = %+v", eps)
	}
	if eps[0].Kind != KindPrefix || eps[0].URL != "https://x.example/" || eps[0].Host != "x.example" {
		t.Errorf("endpoint = %+v", eps[0])
	}
}

func TestExtractRecursionTerminates(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("https://r.example/x"),
			dalvik.InvokeStatic("com.app.Main", "spin", "(String)void"),
		).
		Method("spin", "(String)void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.InvokeStatic("com.app.Main", "spin", "(String)void"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			dalvik.Return(),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	// spin's sink sees its own (recursion-widened) state; the endpoint must
	// exist and the analysis must terminate.
	if len(eps) == 0 {
		t.Fatal("no endpoints from recursive method")
	}
}

func TestExtractLaunchURLTrailingArg(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onClick",
			dalvik.NewInstance(android.CustomTabsIntentBuilderClass),
			dalvik.InvokeDirect(android.CustomTabsIntentBuilderClass, "<init>", "()void"),
			dalvik.InvokeVirtual(android.CustomTabsIntentBuilderClass, "build", "()CustomTabsIntent"),
			dalvik.ConstString("https://tabs.example/flow"),
			dalvik.InvokeVirtual(android.CustomTabsIntentClass, android.MethodLaunchURL, "(Context,Uri)void"),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 || eps[0].Kind != KindFull || eps[0].URL != "https://tabs.example/flow" ||
		eps[0].API != "CustomTabsIntent.launchUrl" {
		t.Fatalf("endpoints = %+v", eps)
	}
}

func TestExtractLoadDataWithBaseURLHistorySlot(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("https://h.example/hist"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadDataWithBaseURL,
				"(String,String,String,String,String)void"),
		)
	eps := extract(t, b.MustBuild(), nil, nil)
	if len(eps) != 1 || eps[0].Kind != KindFull || eps[0].URL != "https://h.example/hist" {
		t.Fatalf("endpoints = %+v", eps)
	}
}

func TestExtractUnreachableAndExcluded(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate")
	b.Class("com.app.Dead", android.ObjectClass, dalvik.AccPublic).
		VoidMethod("never",
			dalvik.ConstString("https://dead.code/"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
		)
	b.Class("com.app.DeepLink", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("https://deep.example/content"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
		)
	dex := b.MustBuild()
	eps := extract(t, dex, map[string]bool{"com.app.DeepLink": true}, nil)
	if len(eps) != 0 {
		t.Fatalf("unreachable/excluded endpoints leaked: %+v", eps)
	}
	eps = extract(t, dex, nil, nil)
	if len(eps) != 1 || eps[0].Class != "com.app.DeepLink" {
		t.Fatalf("without exclusion: %+v", eps)
	}
}

func TestExtractSDKAttribution(t *testing.T) {
	idx := sdkindex.NewIndex([]sdkindex.SDK{
		{Name: "AppLovin", Package: "com.applovin", Category: sdkindex.Advertising},
	})
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.InvokeStatic("com.applovin.adview.Loader", "fetch", "()void"),
		)
	b.Class("com.applovin.adview.Loader", android.ObjectClass, dalvik.AccPublic).
		Method("fetch", "()void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.ConstString("https://ads.applovin.com/load"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			dalvik.Return(),
		)
	eps := extract(t, b.MustBuild(), nil, idx)
	if len(eps) != 1 {
		t.Fatalf("endpoints = %+v", eps)
	}
	ep := eps[0]
	if ep.SDK != "AppLovin" || ep.SDKCategory != string(sdkindex.Advertising) || ep.FirstParty {
		t.Errorf("attribution = %+v", ep)
	}
}

func TestExtractDeterministic(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("https://a.example/1"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			dalvik.ConstString("https://b.example/2"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodPostURL, "(String,byte[])void"),
		)
	dex := b.MustBuild()
	a := extract(t, dex, nil, nil)
	bb := extract(t, dex, nil, nil)
	if !reflect.DeepEqual(a, bb) {
		t.Errorf("nondeterministic extraction:\n%+v\n%+v", a, bb)
	}
	if len(a) != 2 {
		t.Errorf("endpoints = %+v", a)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	if a.Fingerprint() != b.Fingerprint() || len(a.Fingerprint()) != 16 {
		t.Errorf("fingerprints: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if c := New(Config{MaxStack: 8}); c.Fingerprint() == a.Fingerprint() {
		t.Error("config change did not change fingerprint")
	}
}

func TestParamTaintInterprocedural(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.DeepLinkActivity", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.InvokeVirtual("com.app.DeepLinkActivity", "openDeepLink", "()void"),
		).
		VoidMethod("openDeepLink",
			dalvik.InvokeVirtual("com.app.DeepLinkActivity", "getIntent", "()Intent"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeVirtual(android.IntentClass, "getDataString", "()String"),
			dalvik.Instruction{Op: dalvik.OpMoveResult},
			dalvik.InvokeStatic("com.app.LinkRouter", "route", "(String)void"),
		)
	b.Class("com.app.LinkRouter", android.ObjectClass, dalvik.AccPublic).
		Method("route", "(String)void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			dalvik.Return(),
		)
	g := callgraph.Build(b.MustBuild())
	got := ParamTaint(g, TaintConfig{
		Sources:  map[string]bool{"getIntent": true},
		Derivers: map[string]bool{"getDataString": true},
		Sinks:    map[string]bool{"loadUrl": true},
	})
	route := dalvik.MethodRef{Class: "com.app.LinkRouter", Name: "route", Signature: "(String)void"}
	if idxs := got[route]; len(idxs) != 1 || idxs[0] != 0 {
		t.Errorf("route param taint = %v (full map %v)", idxs, got)
	}
}

func TestParamTaintConstArgStaysClean(t *testing.T) {
	b := dalvik.NewBuilder()
	b.Class("com.app.Main", android.ActivityClass, dalvik.AccPublic).
		VoidMethod("onCreate",
			dalvik.ConstString("https://fixed.example"),
			dalvik.InvokeStatic("com.app.LinkRouter", "route", "(String)void"),
		)
	b.Class("com.app.LinkRouter", android.ObjectClass, dalvik.AccPublic).
		Method("route", "(String)void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			dalvik.Return(),
		)
	g := callgraph.Build(b.MustBuild())
	got := ParamTaint(g, TaintConfig{
		Sources:  map[string]bool{"getIntent": true},
		Derivers: map[string]bool{"getDataString": true},
		Sinks:    map[string]bool{"loadUrl": true},
	})
	if len(got) != 0 {
		t.Errorf("unexpected taint: %v", got)
	}
}
