package urlextract

import (
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/callgraph"
	"repro/internal/dalvik"
)

// fuzzTargets is the call pool fuzzed programs draw invokes from: sinks,
// the modelled builder types, an in-file helper (interprocedural paths)
// and the recursive entry method itself.
var fuzzTargets = []dalvik.Instruction{
	dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
	dalvik.InvokeVirtual(android.WebViewClass, android.MethodPostURL, "(String,byte[])void"),
	dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadDataWithBaseURL, "(String,String,String,String,String)void"),
	dalvik.InvokeVirtual(android.CustomTabsIntentClass, android.MethodLaunchURL, "(Context,Uri)void"),
	dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
	dalvik.InvokeDirect("java.lang.StringBuilder", "<init>", "()void"),
	dalvik.InvokeDirect("java.lang.StringBuilder", "<init>", "(String)void"),
	dalvik.InvokeVirtual("java.lang.StringBuilder", "append", "(String)StringBuilder"),
	dalvik.InvokeVirtual("java.lang.StringBuilder", "toString", "()String"),
	dalvik.InvokeVirtual("java.lang.String", "concat", "(String)String"),
	dalvik.InvokeStatic("com.fuzz.app.Helper", "pass", "(String)void"),
	dalvik.InvokeStatic("com.fuzz.app.Main", "onCreate", "()void"),
}

var fuzzTypes = []string{"java.net.URL", "java.lang.StringBuilder", "com.fuzz.app.Main"}

// decodeProgram turns fuzz bytes into a structurally valid instruction
// stream: every byte pair picks an opcode and an operand, branch offsets
// come from a signed byte so forward and backward edges (loops) appear.
func decodeProgram(data []byte, s1, s2 string) []dalvik.Instruction {
	var code []dalvik.Instruction
	strs := []string{s1, s2, "https://fuzz.example/a", ""}
	for i := 0; i+1 < len(data) && len(code) < 64; i += 2 {
		op, arg := data[i], data[i+1]
		switch op % 8 {
		case 0:
			code = append(code, dalvik.ConstString(strs[int(arg)%len(strs)]))
		case 1:
			code = append(code, dalvik.ConstInt(int64(arg)))
		case 2:
			code = append(code, dalvik.NewInstance(fuzzTypes[int(arg)%len(fuzzTypes)]))
		case 3, 4:
			code = append(code, fuzzTargets[int(arg)%len(fuzzTargets)])
		case 5:
			code = append(code, dalvik.Instruction{Op: dalvik.OpMoveResult})
		case 6:
			code = append(code, dalvik.Instruction{Op: dalvik.OpIfZ, Int: int64(int8(arg))})
		case 7:
			code = append(code, dalvik.Instruction{Op: dalvik.OpGoto, Int: int64(int8(arg))})
		}
	}
	code = append(code, dalvik.Return())
	return code
}

// FuzzExtractMethod throws adversarial control flow at the abstract
// interpreter and checks the engine's core invariants: no panics,
// termination, deterministic output, an idempotent URL normalizer and a
// commutative/idempotent lattice join.
func FuzzExtractMethod(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 3, 4}, "https://Seed.Example:443/x", "https://seed.example/y")
	f.Add([]byte{6, 3, 0, 0, 7, 254, 3, 0}, "http://loop.example:80", "http://loop.example/z")
	f.Add([]byte{2, 1, 3, 5, 0, 1, 3, 7, 5, 0, 3, 8, 5, 0, 2, 0, 3, 4}, "https://builder.example/pre", "/suffix")
	f.Add([]byte{0, 0, 3, 10, 3, 11}, "https://helper.example/h", "not a url")
	f.Fuzz(func(t *testing.T, prog []byte, s1, s2 string) {
		n1 := NormalizeURL(s1)
		if again := NormalizeURL(n1); again != n1 {
			t.Fatalf("NormalizeURL not idempotent: %q -> %q -> %q", s1, n1, again)
		}
		v1, v2 := Const(s1), Const(s2)
		if Join(v1, v2) != Join(v2, v1) {
			t.Fatalf("Join not commutative for %q, %q", s1, s2)
		}
		if Join(v1, v1) != v1 {
			t.Fatalf("Join not idempotent for %q", s1)
		}
		j := Join(v1, v2)
		if Join(j, v1) != Join(j, Join(v1, j)) {
			t.Fatalf("Join unstable above the join for %q, %q", s1, s2)
		}

		b := dalvik.NewBuilder()
		b.Class("com.fuzz.app.Main", android.ActivityClass, dalvik.AccPublic).
			Method("onCreate", "()void", dalvik.AccPublic, decodeProgram(prog, s1, s2)...)
		b.Class("com.fuzz.app.Helper", android.ObjectClass, dalvik.AccPublic).
			Method("pass", "(String)void", dalvik.AccPublic|dalvik.AccStatic,
				dalvik.NewInstance("java.net.URL"),
				dalvik.InvokeDirect("java.net.URL", "<init>", "(String)void"),
				dalvik.Return(),
			)
		dex, err := b.Build()
		if err != nil {
			t.Fatalf("fuzz program failed validation: %v", err)
		}
		g := callgraph.Build(dex)
		ex := New(Config{})
		eps := ex.Extract(g, nil, nil)
		if again := ex.Extract(callgraph.Build(dex), nil, nil); !reflect.DeepEqual(eps, again) {
			t.Fatalf("nondeterministic extraction:\n%+v\n%+v", eps, again)
		}
		for _, ep := range eps {
			switch ep.Kind {
			case KindFull, KindPrefix, KindDynamic:
			default:
				t.Fatalf("invalid endpoint kind %q in %+v", ep.Kind, ep)
			}
			if ep.Kind == KindFull && NormalizeURL(ep.URL) != ep.URL {
				t.Fatalf("full endpoint URL not normalized: %+v", ep)
			}
		}
	})
}
