package urlextract

import (
	"sort"

	"repro/internal/callgraph"
	"repro/internal/dalvik"
)

// TaintConfig names the method sets a boolean taint walk distinguishes:
// Sources taint their result, Derivers propagate taint from receiver or
// argument to result, and Sinks consume taint (no propagation through a
// sink's own callee edge — the finding belongs at the sink).
type TaintConfig struct {
	Sources  map[string]bool
	Derivers map[string]bool
	Sinks    map[string]bool
}

// ParamTaint runs an interprocedural boolean taint fixpoint over the
// graph's bytecode and returns, per method, the sorted indices of
// parameters that can carry source-derived data. The per-method walk
// mirrors the decompiler's rendering semantics exactly — linear scan,
// operand stack cleared at branches, constructor operands left for the
// call they feed, missing leading invoke arguments standing in for the
// enclosing method's own parameters — so lint rules that match on the
// decompiled source see the same flows the bytecode carries.
func ParamTaint(g *callgraph.Graph, cfg TaintConfig) map[dalvik.MethodRef][]int {
	dex := g.Dex()
	body := make(map[dalvik.MethodRef]*dalvik.Method, dex.MethodCount())
	var order []dalvik.MethodRef
	for ci := range dex.Classes {
		c := &dex.Classes[ci]
		for mi := range c.Methods {
			m := &c.Methods[mi]
			ref := m.Ref(c.Name)
			if _, dup := body[ref]; dup {
				continue
			}
			body[ref] = m
			order = append(order, ref)
		}
	}

	taint := make(map[dalvik.MethodRef]map[int]bool)
	queued := make(map[dalvik.MethodRef]bool, len(order))
	work := append([]dalvik.MethodRef(nil), order...)
	for _, ref := range work {
		queued[ref] = true
	}
	push := func(ref dalvik.MethodRef) {
		if !queued[ref] {
			queued[ref] = true
			work = append(work, ref)
		}
	}

	for len(work) > 0 {
		ref := work[0]
		work = work[1:]
		queued[ref] = false
		taintWalk(g, ref, body[ref], taint, cfg, push)
	}

	out := make(map[dalvik.MethodRef][]int, len(taint))
	for ref, set := range taint {
		idxs := make([]int, 0, len(set))
		for i := range set {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		out[ref] = idxs
	}
	return out
}

// taintWalk scans one method linearly, tracking taint per operand-stack
// slot plus the last-invoke-result variable, and records interprocedural
// edges: a tainted argument at slot k taints the resolved callee's k-th
// parameter (enqueueing the callee when its set grows).
func taintWalk(g *callgraph.Graph, ref dalvik.MethodRef, m *dalvik.Method,
	taint map[dalvik.MethodRef]map[int]bool, cfg TaintConfig, push func(dalvik.MethodRef)) {
	params := taint[ref]
	own := arity(ref.Signature)
	var stack []bool
	lastTainted := false
	afterInvoke := false
	resTaint := false
	pendingNew := ""
	for _, ins := range m.Code {
		wasInvoke := false
		switch ins.Op {
		case dalvik.OpConstString, dalvik.OpConstInt:
			stack = append(stack, false)
		case dalvik.OpNewInstance:
			pendingNew = ins.Type
		case dalvik.OpInvokeVirtual, dalvik.OpInvokeStatic, dalvik.OpInvokeDirect, dalvik.OpInvokeInterface:
			wasInvoke = true
			t := ins.Target
			ar := arity(t.Signature)
			if ins.Op == dalvik.OpInvokeDirect && t.Name == ctorName && pendingNew == t.Class {
				// Constructor placeholder idiom: operands stay put, the
				// fresh object (which becomes the last-result variable)
				// is untainted.
				pendingNew = ""
				resTaint = false
				lastTainted = false
				break
			}
			take := ar
			if len(stack) < take {
				take = len(stack)
			}
			args := make([]bool, ar)
			base := len(stack) - take
			for i := 0; i < take; i++ {
				args[ar-take+i] = stack[base+i]
			}
			stack = stack[:base]
			for i := 0; i < ar-take; i++ {
				if i < own && params[i] {
					args[i] = true
				}
			}
			switch {
			case cfg.Sources[t.Name]:
				resTaint = true
			case cfg.Derivers[t.Name]:
				recv := ins.Op != dalvik.OpInvokeStatic && lastTainted
				resTaint = recv
				for _, a := range args {
					resTaint = resTaint || a
				}
			default:
				resTaint = false
			}
			if !cfg.Sinks[t.Name] {
				if resolved, ok := g.Resolve(t); ok {
					calleeAr := arity(resolved.Signature)
					for k, a := range args {
						if !a || k >= calleeAr {
							continue
						}
						if taint[resolved] == nil {
							taint[resolved] = make(map[int]bool, 2)
						}
						if !taint[resolved][k] {
							taint[resolved][k] = true
							push(resolved)
						}
					}
				}
			}
		case dalvik.OpMoveResult:
			if afterInvoke {
				stack = append(stack, resTaint)
				lastTainted = resTaint
			} else {
				stack = append(stack, false)
				lastTainted = false
			}
		case dalvik.OpIfZ, dalvik.OpGoto, dalvik.OpReturnVoid, dalvik.OpReturnValue, dalvik.OpThrow:
			stack = stack[:0]
		}
		afterInvoke = wasInvoke
	}
}
