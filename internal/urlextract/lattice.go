// Package urlextract is an interprocedural string-dataflow engine over the
// sdex bytecode. It abstractly interprets each method's instruction stream
// with a flat string lattice, computes per-method summaries (constant
// return, parameter passthrough, constant concatenation), propagates them
// bottom-up over the call graph's SCC condensation, and sinks at
// network/WebView APIs to recover the endpoints an app can talk to.
package urlextract

import "strings"

// Tail classifies what follows a Value's known constant prefix.
type Tail int

const (
	// TailNone means the value is exactly the constant prefix.
	TailNone Tail = iota
	// TailParam means prefix + the enclosing method's parameter Param.
	TailParam
	// TailDynamic means prefix + something unknowable statically (⊤ when
	// the prefix is empty).
	TailDynamic
)

// Value is an element of the string lattice: a known constant prefix
// followed by an optional symbolic tail. The lattice is flat per prefix
// with ⊤ = {Prefix: "", Tail: TailDynamic}.
type Value struct {
	Prefix string
	Tail   Tail
	// Param is the parameter index when Tail == TailParam.
	Param int
}

// maxPrefix bounds how much constant text a value may accumulate; joins
// and concatenations past the cap degrade to a dynamic tail, which keeps
// the lattice finite and every fixpoint terminating.
const maxPrefix = 192

// Const returns the lattice value for an exact string constant.
func Const(s string) Value {
	if len(s) > maxPrefix {
		return Value{Prefix: s[:maxPrefix], Tail: TailDynamic}
	}
	return Value{Prefix: s}
}

// Param returns the lattice value for the enclosing method's i-th
// parameter, untouched.
func Param(i int) Value { return Value{Tail: TailParam, Param: i} }

// Dynamic is ⊤: nothing is known about the string.
func Dynamic() Value { return Value{Tail: TailDynamic} }

// IsConst reports whether v is an exact constant.
func (v Value) IsConst() bool { return v.Tail == TailNone }

// Concat models string concatenation a + b. A constant left-hand side
// extends the prefix; any symbolic tail on the left absorbs whatever
// follows (we only track one unknown region, at the end).
func Concat(a, b Value) Value {
	switch a.Tail {
	case TailNone:
		p := a.Prefix + b.Prefix
		if len(p) > maxPrefix {
			return Value{Prefix: p[:maxPrefix], Tail: TailDynamic}
		}
		return Value{Prefix: p, Tail: b.Tail, Param: b.Param}
	default:
		// a ends in an unknown region; appending the empty constant is
		// the identity, anything else degrades the tail to dynamic.
		if b.Tail == TailNone && b.Prefix == "" {
			return a
		}
		return Value{Prefix: a.Prefix, Tail: TailDynamic}
	}
}

// Join is the lattice join: equal values stay, otherwise the result keeps
// the longest common prefix and degrades the tail. Two passthroughs of the
// same parameter with the same prefix are preserved exactly.
func Join(a, b Value) Value {
	if a == b {
		return a
	}
	p := commonPrefix(a.Prefix, b.Prefix)
	if a.Tail == TailParam && b.Tail == TailParam && a.Param == b.Param && a.Prefix == b.Prefix {
		return a
	}
	return Value{Prefix: p, Tail: TailDynamic}
}

func commonPrefix(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// NormalizeURL canonicalises an absolute URL for comparison against
// dynamically observed requests: the scheme and host are lowercased and
// default ports dropped. Inputs that do not look like scheme://host...
// are returned unchanged. The function is idempotent (fuzzed).
func NormalizeURL(raw string) string {
	scheme, rest, ok := splitScheme(raw)
	if !ok {
		return raw
	}
	authority, tail := splitAuthority(rest)
	host, port := splitHostPort(authority)
	host = strings.ToLower(host)
	switch {
	case port == "80" && scheme == "http", port == "443" && scheme == "https":
		port = ""
	}
	var b strings.Builder
	b.Grow(len(raw))
	b.WriteString(scheme)
	b.WriteString("://")
	b.WriteString(host)
	if port != "" {
		b.WriteByte(':')
		b.WriteString(port)
	}
	b.WriteString(tail)
	return b.String()
}

// HostOf extracts the lowercased host of an absolute URL, or "" when the
// string is not one.
func HostOf(raw string) string {
	_, rest, ok := splitScheme(raw)
	if !ok {
		return ""
	}
	authority, _ := splitAuthority(rest)
	host, _ := splitHostPort(authority)
	return strings.ToLower(host)
}

// HostPrefixOf returns the host portion of a partial URL prefix that was
// cut before the authority terminator — e.g. "https://api.ex" yields
// ("api.ex", true) meaning "a host starting with api.ex". Complete URLs
// and non-URLs return ok = false; use HostOf for the former.
func HostPrefixOf(raw string) (string, bool) {
	scheme, rest, ok := splitScheme(raw)
	if !ok || scheme == "" {
		return "", false
	}
	if i := strings.IndexAny(rest, "/?#"); i >= 0 {
		return "", false // authority is complete
	}
	host, _ := splitHostPort(rest)
	return strings.ToLower(host), true
}

// splitScheme splits "https://rest" into ("https", "rest", true). The
// scheme must be a non-empty run of letters, digits, '+', '-' or '.'
// starting with a letter.
func splitScheme(raw string) (scheme, rest string, ok bool) {
	i := strings.Index(raw, "://")
	if i <= 0 {
		return "", "", false
	}
	s := raw[:i]
	if !isAlpha(s[0]) {
		return "", "", false
	}
	for j := 1; j < len(s); j++ {
		c := s[j]
		if !isAlpha(c) && !isDigit(c) && c != '+' && c != '-' && c != '.' {
			return "", "", false
		}
	}
	return strings.ToLower(s), raw[i+3:], true
}

// splitAuthority splits the part after "://" into the authority and the
// remaining path/query/fragment tail (tail keeps its leading delimiter).
func splitAuthority(rest string) (authority, tail string) {
	if i := strings.IndexAny(rest, "/?#"); i >= 0 {
		return rest[:i], rest[i:]
	}
	return rest, ""
}

// splitHostPort strips an explicit ":port" suffix (digits only) from an
// authority. Userinfo is not modelled by the corpus and left alone.
func splitHostPort(authority string) (host, port string) {
	i := strings.LastIndexByte(authority, ':')
	if i < 0 {
		return authority, ""
	}
	p := authority[i+1:]
	if p == "" {
		return authority[:i], ""
	}
	for j := 0; j < len(p); j++ {
		if !isDigit(p[j]) {
			return authority, ""
		}
	}
	return authority[:i], p
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
