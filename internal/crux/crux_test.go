package crux

import (
	"context"
	"strings"
	"testing"

	"repro/internal/browsersim"
	"repro/internal/dom"
	"repro/internal/internet"
)

func TestTopSitesDeterministicAndCategorised(t *testing.T) {
	a := TopSites(100)
	b := TopSites(100)
	if len(a) != 100 {
		t.Fatalf("sites = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("site %d differs between calls", i)
		}
	}
	cats := map[string]int{}
	hosts := map[string]bool{}
	for _, s := range a {
		cats[s.Category]++
		if hosts[s.Host] {
			t.Errorf("duplicate host %s", s.Host)
		}
		hosts[s.Host] = true
		if s.Richness <= 0 {
			t.Errorf("%s: richness %d", s.Host, s.Richness)
		}
	}
	if len(cats) != len(Categories()) {
		t.Errorf("categories covered = %d, want %d", len(cats), len(Categories()))
	}
}

func TestRichnessGradient(t *testing.T) {
	sites := TopSites(20)
	var news, search Site
	for _, s := range sites {
		if s.Category == "News" && news.Host == "" {
			news = s
		}
		if s.Category == "Search" && search.Host == "" {
			search = s
		}
	}
	if news.Richness <= search.Richness {
		t.Errorf("News richness (%d) <= Search richness (%d)", news.Richness, search.Richness)
	}
}

func TestHandlerServesRichnessScaledPages(t *testing.T) {
	sites := TopSites(20)
	in := internet.New()
	RegisterAll(in, sites)
	loader := &browsersim.Loader{Client: in.Client()}
	counts := map[string]int{}
	for _, s := range []Site{sites[0], sites[9]} { // News vs Search
		page, err := loader.Load(context.Background(), "https://"+s.Host+"/")
		if err != nil {
			t.Fatalf("load %s: %v", s.Host, err)
		}
		if page.Doc.Title != s.Host {
			t.Errorf("%s title = %q", s.Host, page.Doc.Title)
		}
		n := 0
		page.Doc.Root.Walk(func(node *dom.Node) bool {
			if node.Type == dom.ElementNode {
				n++
			}
			return true
		})
		counts[s.Category] = n
	}
	if counts["News"] <= counts["Search"] {
		t.Errorf("element counts: %v (News should exceed Search)", counts)
	}
}

func TestHandlerServesSubresources(t *testing.T) {
	in := internet.New()
	site := TopSites(1)[0]
	RegisterAll(in, []Site{site})
	client := in.Client()
	for _, path := range []string{"/site.css", "/site.js", "/img-0.png", "/story/3"} {
		resp, err := client.Get("https://" + site.Host + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

func TestHostNamesAreWellFormed(t *testing.T) {
	for _, s := range TopSites(50) {
		if strings.ContainsAny(s.Host, " /:") || !strings.HasSuffix(s.Host, ".example") {
			t.Errorf("bad host %q", s.Host)
		}
	}
}
