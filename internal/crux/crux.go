// Package crux stands in for the Chrome User Experience Report top-origin
// list the paper samples its crawl targets from (§3.2.2): a deterministic
// list of synthetic top sites, each with a category and a content-richness
// level, plus handler generation so the sites are actually servable on the
// in-process internet. Content-rich categories (News, Entertainment,
// Shopping) produce larger DOMs, which is what drives the Figure 6
// endpoint-count differences.
package crux

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"

	"repro/internal/internet"
)

// Site is one top-list origin.
type Site struct {
	Host     string
	Category string
	// Richness approximates the landing page's content volume (element
	// count scales with it).
	Richness int
}

// categories mirror the Figure 6 x-axis, with per-category richness.
var categories = []struct {
	Name     string
	Richness int
}{
	{"News", 190},
	{"Entertainment", 170},
	{"Shopping", 150},
	{"Social", 140},
	{"Sports", 130},
	{"Travel", 110},
	{"Finance", 90},
	{"Education", 75},
	{"Technology", 55},
	{"Search", 25},
}

// Categories lists the site categories in richness order.
func Categories() []string {
	out := make([]string, len(categories))
	for i, c := range categories {
		out[i] = c.Name
	}
	return out
}

// TopSites returns the first n sites of the synthetic top list. Sites
// cycle through the categories so every category is represented.
func TopSites(n int) []Site {
	out := make([]Site, 0, n)
	for i := 0; i < n; i++ {
		cat := categories[i%len(categories)]
		rank := i/len(categories) + 1
		// Small deterministic jitter so same-category sites differ.
		jitter := int(fnv32(fmt.Sprintf("%s-%d", cat.Name, rank)) % 31)
		out = append(out, Site{
			Host:     fmt.Sprintf("%s-%02d.example", strings.ToLower(cat.Name), rank),
			Category: cat.Name,
			Richness: cat.Richness + jitter,
		})
	}
	return out
}

func fnv32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// Handler serves the site's landing page: a deterministic document whose
// element count tracks the site's richness.
func Handler(s Site) http.Handler {
	page := buildPage(s)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/" || r.URL.Path == "":
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			w.Write([]byte(page))
		case strings.HasSuffix(r.URL.Path, ".css"):
			w.Header().Set("Content-Type", "text/css")
			w.Write([]byte("body{margin:0}"))
		case strings.HasSuffix(r.URL.Path, ".js"):
			w.Header().Set("Content-Type", "application/javascript")
			w.Write([]byte("window.__site = '" + s.Host + "';"))
		case strings.HasSuffix(r.URL.Path, ".png"):
			w.Header().Set("Content-Type", "image/png")
			w.Write([]byte("PNG"))
		default:
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprintf(w, "<html><head><title>%s</title></head><body><p>inner page</p></body></html>", s.Host)
		}
	})
}

func buildPage(s Site) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<!DOCTYPE html>
<html><head>
<meta charset="utf-8">
<meta name="category" content="%s">
<title>%s</title>
<link rel="stylesheet" href="/site.css">
<script src="/site.js"></script>
</head><body>
<header><h1>%s</h1><nav><ul>
<li><a href="/section/a">Section A</a></li>
<li><a href="/section/b">Section B</a></li>
</ul></nav></header>
<main>
`, s.Category, s.Host, s.Host)
	// One article block per ~6 richness units; each block is 6 elements.
	blocks := s.Richness / 6
	for i := 0; i < blocks; i++ {
		fmt.Fprintf(&sb, `<article class="story"><h2>Story %d</h2><p>Content of story %d on %s, with a <a href="/story/%d">link</a>.</p><img src="/img-%d.png" alt="story image"></article>
`, i, i, s.Host, i, i%3)
	}
	sb.WriteString("</main><footer><p>footer</p></footer></body></html>\n")
	return sb.String()
}

// RegisterAll registers every site on the internet.
func RegisterAll(in *internet.Internet, sites []Site) {
	for _, s := range sites {
		in.Register(s.Host, Handler(s))
	}
}
