// Package javaparser parses the Java-subset source emitted by the
// decompiler (and hand-written code of the same shape). It is the stand-in
// for the javalang parser the paper uses to find classes that extend
// android.webkit.WebView (§3.1.2): it extracts the package declaration,
// imports, type declarations with their extends/implements clauses, method
// declarations, and the method calls inside bodies.
package javaparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // single punctuation rune
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// next returns the next token, skipping whitespace and comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("line %d: unterminated block comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.' || l.src[l.pos] == 'x' ||
			l.src[l.pos] >= 'a' && l.src[l.pos] <= 'f' || l.src[l.pos] == 'L') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '"':
		return l.lexString()
	default:
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\\':
			l.pos += 2
		case '"':
			l.pos++
			return token{kind: tokString, text: l.src[start:l.pos], line: l.line}, nil
		case '\n':
			return token{}, fmt.Errorf("line %d: newline in string literal", l.line)
		default:
			l.pos++
		}
	}
	return token{}, fmt.Errorf("line %d: unterminated string literal", l.line)
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}
