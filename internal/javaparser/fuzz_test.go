package javaparser

import (
	"testing"
)

// FuzzParse drives the whole parser with arbitrary source. Parse must never
// panic or hang; when it succeeds, the unit must be structurally sane
// (non-empty type and method names, call receivers/names interned slices of
// real text).
func FuzzParse(f *testing.F) {
	f.Add("package p; class C { void m() { a.b(); } }")
	f.Add(src) // the canonical decompiled-shape fixture
	f.Add("class X {")
	f.Add(`package p; import a.B; interface I { void m(String s); }`)
	f.Add("package p; class C { int x = f(1, \"a;b\", g(2)); void m() {} }")
	f.Add("package p; class O { class N { void m() { this.go(); } } }")
	f.Add("package é; class C { void m() { \"\\\"\"; } }")
	f.Fuzz(func(t *testing.T, src string) {
		u, err := Parse(src)
		if err != nil {
			return
		}
		for _, td := range u.Types {
			if td.Name == "" {
				t.Errorf("empty type name in %q", src)
			}
			for _, m := range td.Methods {
				if m.Name == "" {
					t.Errorf("empty method name in %q", src)
				}
				for _, c := range m.Calls {
					if c.Name == "" {
						t.Errorf("empty call name in %q", src)
					}
				}
			}
		}
	})
}

// FuzzCallArgs embeds arbitrary text as a method-body statement and checks
// the argument-expression capture: no panic, and no captured argument is
// the empty string (a bare comma never yields one).
func FuzzCallArgs(f *testing.F) {
	f.Add(`v.loadUrl("https://x/", true, intent.getData())`)
	f.Add("settings.setJavaScriptEnabled(true)")
	f.Add("f(g(a, b), (String) c, a + (b))")
	f.Add("Object v1 = this.getIntent()")
	f.Add("x.y(,,)")
	f.Add("a.b(\"unterminated")
	f.Fuzz(func(t *testing.T, stmt string) {
		u, err := Parse("package p;\nclass F { void m() {\n" + stmt + ";\n} }")
		if err != nil {
			return
		}
		for _, m := range u.Types[0].Methods {
			for _, c := range m.Calls {
				for _, a := range c.Args {
					if a == "" {
						t.Errorf("empty arg captured from %q: %#v", stmt, c.Args)
					}
				}
			}
		}
	})
}
