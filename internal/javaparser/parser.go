package javaparser

import (
	"fmt"
	"strings"

	"repro/internal/intern"
)

// Call is a method invocation found inside a body: Receiver is the text to
// the left of the final dot ("webView", "CustomTabsIntent.Builder", …) and
// Name the invoked method.
type Call struct {
	Receiver string
	Name     string
	Line     int
}

// MethodDecl is a method found in a type body.
type MethodDecl struct {
	Name  string
	Calls []Call
}

// TypeKind distinguishes classes from interfaces.
type TypeKind int

// Type kinds.
const (
	KindClass TypeKind = iota
	KindInterface
)

// TypeDecl is a top-level (or nested) type declaration.
type TypeDecl struct {
	Kind       TypeKind
	Name       string
	Extends    string
	Implements []string
	Methods    []MethodDecl
}

// CompilationUnit is a parsed source file.
type CompilationUnit struct {
	Package string
	Imports []string
	Types   []TypeDecl
}

// Imported reports whether the unit imports the fully-qualified type.
func (u *CompilationUnit) Imported(fqn string) bool {
	for _, imp := range u.Imports {
		if imp == fqn {
			return true
		}
	}
	return false
}

// Resolve maps a possibly-simple type name to a fully-qualified one using
// the import table, falling back to the unit's own package, mirroring Java
// name resolution closely enough for the analyses here.
func (u *CompilationUnit) Resolve(name string) string {
	if strings.Contains(name, ".") {
		// Either already qualified, or Outer.Inner of an imported outer type.
		head := name[:strings.IndexByte(name, '.')]
		for _, imp := range u.Imports {
			if simpleOf(imp) == head {
				return imp + name[strings.IndexByte(name, '.'):]
			}
		}
		return name
	}
	for _, imp := range u.Imports {
		if simpleOf(imp) == name {
			return imp
		}
	}
	if u.Package != "" {
		return u.Package + "." + name
	}
	return name
}

func simpleOf(fqn string) string {
	if i := strings.LastIndexByte(fqn, '.'); i >= 0 {
		return fqn[i+1:]
	}
	return fqn
}

type parser struct {
	lex    *lexer
	tok    token
	peeked *token
}

// Parse parses one Java source file.
func Parse(src string) (*CompilationUnit, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseUnit()
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok, p.peeked = *p.peeked, nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return fmt.Errorf("line %d: expected %q, found %q", p.tok.line, s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseUnit() (*CompilationUnit, error) {
	u := &CompilationUnit{}
	if p.tok.kind == tokIdent && p.tok.text == "package" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		u.Package = name
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	for p.tok.kind == tokIdent && p.tok.text == "import" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		u.Imports = append(u.Imports, name)
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	for p.tok.kind != tokEOF {
		td, err := p.parseTypeDecl()
		if err != nil {
			return nil, err
		}
		u.Types = append(u.Types, *td)
	}
	return u, nil
}

// parseQualifiedName consumes a dotted identifier chain. The result is
// interned: package names, imports and superclass names repeat across
// thousands of decompiled units, and interning both dedups them and stops
// a retained name from pinning the whole source string it was sliced from.
func (p *parser) parseQualifiedName() (string, error) {
	if p.tok.kind != tokIdent {
		return "", fmt.Errorf("line %d: expected identifier, found %q", p.tok.line, p.tok.text)
	}
	first := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	if p.tok.kind != tokPunct || p.tok.text != "." {
		return intern.String(first), nil // common single-identifier case: no builder
	}
	var sb strings.Builder
	sb.WriteString(first)
	for p.tok.kind == tokPunct && p.tok.text == "." {
		if err := p.advance(); err != nil {
			return "", err
		}
		if p.tok.kind != tokIdent {
			return "", fmt.Errorf("line %d: expected identifier after '.', found %q", p.tok.line, p.tok.text)
		}
		sb.WriteByte('.')
		sb.WriteString(p.tok.text)
		if err := p.advance(); err != nil {
			return "", err
		}
	}
	return intern.String(sb.String()), nil
}

var modifierWords = map[string]bool{
	"public": true, "private": true, "protected": true,
	"static": true, "final": true, "abstract": true, "synchronized": true,
	"native": true, "strictfp": true, "transient": true, "volatile": true,
}

func (p *parser) skipModifiers() error {
	for p.tok.kind == tokIdent && modifierWords[p.tok.text] {
		if err := p.advance(); err != nil {
			return err
		}
	}
	// Annotations: @Name or @Name(...)
	for p.tok.kind == tokPunct && p.tok.text == "@" {
		if err := p.advance(); err != nil {
			return err
		}
		if _, err := p.parseQualifiedName(); err != nil {
			return err
		}
		if p.tok.kind == tokPunct && p.tok.text == "(" {
			if err := p.skipBalanced("(", ")"); err != nil {
				return err
			}
		}
		if err := p.skipModifiers(); err != nil {
			return err
		}
		return nil
	}
	return nil
}

func (p *parser) parseTypeDecl() (*TypeDecl, error) {
	if err := p.skipModifiers(); err != nil {
		return nil, err
	}
	td := &TypeDecl{}
	switch {
	case p.tok.kind == tokIdent && p.tok.text == "class":
		td.Kind = KindClass
	case p.tok.kind == tokIdent && p.tok.text == "interface":
		td.Kind = KindInterface
	default:
		return nil, fmt.Errorf("line %d: expected class or interface, found %q", p.tok.line, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected type name, found %q", p.tok.line, p.tok.text)
	}
	td.Name = intern.String(p.tok.text)
	if err := p.advance(); err != nil {
		return nil, err
	}

	if p.tok.kind == tokIdent && p.tok.text == "extends" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		td.Extends = name
	}
	if p.tok.kind == tokIdent && p.tok.text == "implements" {
		for {
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.parseQualifiedName()
			if err != nil {
				return nil, err
			}
			td.Implements = append(td.Implements, name)
			if p.tok.kind != tokPunct || p.tok.text != "," {
				break
			}
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if err := p.parseTypeBody(td); err != nil {
		return nil, err
	}
	return td, nil
}

// parseTypeBody scans member declarations until the matching '}'. It
// recognises method declarations by the pattern ident '(' … ')' '{' and
// records the calls inside their bodies; everything else (fields, nested
// types) is skipped structurally.
func (p *parser) parseTypeBody(td *TypeDecl) error {
	for {
		switch {
		case p.tok.kind == tokEOF:
			return fmt.Errorf("unexpected EOF in type body of %s", td.Name)
		case p.tok.kind == tokPunct && p.tok.text == "}":
			return p.advance()
		case p.tok.kind == tokIdent && (p.tok.text == "class" || p.tok.text == "interface"):
			nested, err := p.parseTypeDecl()
			if err != nil {
				return err
			}
			// Nested types surface their methods on the parent with a
			// qualified name so call extraction stays flat.
			for _, m := range nested.Methods {
				m.Name = nested.Name + "." + m.Name
				td.Methods = append(td.Methods, m)
			}
		default:
			if err := p.parseMember(td); err != nil {
				return err
			}
		}
	}
}

// parseMember handles one field or method. Strategy: consume tokens until
// we can classify the member — a '(' after an identifier makes it a method
// (the identifier is its name); a ';' or '=' makes it a field.
func (p *parser) parseMember(td *TypeDecl) error {
	if err := p.skipModifiers(); err != nil {
		return err
	}
	if p.tok.kind == tokIdent && (p.tok.text == "class" || p.tok.text == "interface") {
		nested, err := p.parseTypeDecl()
		if err != nil {
			return err
		}
		for _, m := range nested.Methods {
			m.Name = nested.Name + "." + m.Name
			td.Methods = append(td.Methods, m)
		}
		return nil
	}
	var lastIdent string
	for {
		switch {
		case p.tok.kind == tokEOF:
			return fmt.Errorf("unexpected EOF in member of %s", td.Name)
		case p.tok.kind == tokIdent:
			lastIdent = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
		case p.tok.kind == tokPunct && p.tok.text == "(":
			// Method declaration: name is lastIdent.
			if err := p.skipBalanced("(", ")"); err != nil {
				return err
			}
			// throws clause
			if p.tok.kind == tokIdent && p.tok.text == "throws" {
				if err := p.advance(); err != nil {
					return err
				}
				for p.tok.kind == tokIdent || p.tok.kind == tokPunct && (p.tok.text == "," || p.tok.text == ".") {
					if err := p.advance(); err != nil {
						return err
					}
				}
			}
			m := MethodDecl{Name: intern.String(lastIdent)}
			switch {
			case p.tok.kind == tokPunct && p.tok.text == "{":
				calls, err := p.parseMethodBody()
				if err != nil {
					return err
				}
				m.Calls = calls
			case p.tok.kind == tokPunct && p.tok.text == ";":
				if err := p.advance(); err != nil { // abstract/interface method
					return err
				}
			default:
				return fmt.Errorf("line %d: expected '{' or ';' after method %s, found %q", p.tok.line, lastIdent, p.tok.text)
			}
			td.Methods = append(td.Methods, m)
			return nil
		case p.tok.kind == tokPunct && (p.tok.text == ";"):
			return p.advance() // field without initialiser
		case p.tok.kind == tokPunct && p.tok.text == "=":
			// Field initialiser: skip to the terminating ';' at depth 0.
			return p.skipToSemicolon()
		case p.tok.kind == tokPunct:
			// Type punctuation in declarations: dots, generics, arrays.
			if err := p.advance(); err != nil {
				return err
			}
		default:
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
}

func (p *parser) skipToSemicolon() error {
	depth := 0
	for {
		switch {
		case p.tok.kind == tokEOF:
			return fmt.Errorf("unexpected EOF in initialiser")
		case p.tok.kind == tokPunct && (p.tok.text == "(" || p.tok.text == "{" || p.tok.text == "["):
			depth++
		case p.tok.kind == tokPunct && (p.tok.text == ")" || p.tok.text == "}" || p.tok.text == "]"):
			depth--
		case p.tok.kind == tokPunct && p.tok.text == ";" && depth == 0:
			return p.advance()
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

// skipBalanced consumes from the current open token through its matching
// close token.
func (p *parser) skipBalanced(open, close string) error {
	if p.tok.kind != tokPunct || p.tok.text != open {
		return fmt.Errorf("line %d: expected %q", p.tok.line, open)
	}
	depth := 0
	for {
		if p.tok.kind == tokEOF {
			return fmt.Errorf("unexpected EOF looking for %q", close)
		}
		if p.tok.kind == tokPunct {
			switch p.tok.text {
			case open:
				depth++
			case close:
				depth--
				if depth == 0 {
					return p.advance()
				}
			}
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

// parseMethodBody walks a balanced '{ … }' region recording every
// qualified call: a dotted identifier chain immediately followed by '('.
func (p *parser) parseMethodBody() ([]Call, error) {
	if p.tok.kind != tokPunct || p.tok.text != "{" {
		return nil, fmt.Errorf("line %d: expected '{'", p.tok.line)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var calls []Call
	depth := 1
	var chain []string // pending identifier chain
	chainDotted := false
	flush := func() { chain = chain[:0]; chainDotted = false }
	for {
		switch {
		case p.tok.kind == tokEOF:
			return nil, fmt.Errorf("unexpected EOF in method body")
		case p.tok.kind == tokIdent:
			if !chainDotted && len(chain) > 0 {
				chain = chain[:0] // new statement word (e.g. "String s1")
			}
			chain = append(chain, p.tok.text)
			chainDotted = false
		case p.tok.kind == tokPunct && p.tok.text == ".":
			chainDotted = true
		case p.tok.kind == tokPunct && p.tok.text == "(":
			if len(chain) >= 2 {
				calls = append(calls, Call{
					Receiver: intern.String(strings.Join(chain[:len(chain)-1], ".")),
					Name:     intern.String(chain[len(chain)-1]),
					Line:     p.tok.line,
				})
			}
			flush()
			depth++
		case p.tok.kind == tokPunct && p.tok.text == ")":
			depth--
			flush()
		case p.tok.kind == tokPunct && p.tok.text == "{":
			depth++
			flush()
		case p.tok.kind == tokPunct && p.tok.text == "}":
			depth--
			if depth == 0 {
				return calls, p.advance()
			}
			flush()
		default:
			flush()
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}
