package javaparser

import (
	"fmt"
	"strings"

	"repro/internal/intern"
)

// Call is a method invocation found inside a body: Receiver is the text to
// the left of the final dot ("webView", "CustomTabsIntent.Builder", …) and
// Name the invoked method.
type Call struct {
	Receiver string
	Name     string
	Line     int
	// Args holds the textual argument expressions, one per top-level comma:
	// literals ("true", "0", `"https://…"`), identifiers ("v2") or chains
	// ("intent.getDataString()"). Configuration-sensitive lint rules match
	// on these.
	Args []string
	// Assign names the local variable a statement-level call's result is
	// assigned to ("v1" in `Object v1 = this.getIntent();`), or "".
	Assign string
}

// MethodDecl is a method found in a type body.
type MethodDecl struct {
	Name string
	// Params holds the declared parameter names in order — the def-use
	// entry points interprocedural taint propagates into.
	Params []string
	Calls  []Call
}

// TypeKind distinguishes classes from interfaces.
type TypeKind int

// Type kinds.
const (
	KindClass TypeKind = iota
	KindInterface
)

// TypeDecl is a top-level (or nested) type declaration.
type TypeDecl struct {
	Kind       TypeKind
	Name       string
	Extends    string
	Implements []string
	Methods    []MethodDecl
}

// CompilationUnit is a parsed source file.
type CompilationUnit struct {
	Package string
	Imports []string
	Types   []TypeDecl
}

// Imported reports whether the unit imports the fully-qualified type.
func (u *CompilationUnit) Imported(fqn string) bool {
	for _, imp := range u.Imports {
		if imp == fqn {
			return true
		}
	}
	return false
}

// Resolve maps a possibly-simple type name to a fully-qualified one using
// the import table, falling back to the unit's own package, mirroring Java
// name resolution closely enough for the analyses here.
func (u *CompilationUnit) Resolve(name string) string {
	if strings.Contains(name, ".") {
		// Either already qualified, or Outer.Inner of an imported outer type.
		head := name[:strings.IndexByte(name, '.')]
		for _, imp := range u.Imports {
			if simpleOf(imp) == head {
				return imp + name[strings.IndexByte(name, '.'):]
			}
		}
		return name
	}
	for _, imp := range u.Imports {
		if simpleOf(imp) == name {
			return imp
		}
	}
	if u.Package != "" {
		return u.Package + "." + name
	}
	return name
}

func simpleOf(fqn string) string {
	if i := strings.LastIndexByte(fqn, '.'); i >= 0 {
		return fqn[i+1:]
	}
	return fqn
}

type parser struct {
	lex    *lexer
	tok    token
	peeked *token
}

// Parse parses one Java source file.
func Parse(src string) (*CompilationUnit, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseUnit()
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok, p.peeked = *p.peeked, nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return fmt.Errorf("line %d: expected %q, found %q", p.tok.line, s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseUnit() (*CompilationUnit, error) {
	u := &CompilationUnit{}
	if p.tok.kind == tokIdent && p.tok.text == "package" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		u.Package = name
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	for p.tok.kind == tokIdent && p.tok.text == "import" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		u.Imports = append(u.Imports, name)
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	for p.tok.kind != tokEOF {
		td, err := p.parseTypeDecl()
		if err != nil {
			return nil, err
		}
		u.Types = append(u.Types, *td)
	}
	return u, nil
}

// parseQualifiedName consumes a dotted identifier chain. The result is
// interned: package names, imports and superclass names repeat across
// thousands of decompiled units, and interning both dedups them and stops
// a retained name from pinning the whole source string it was sliced from.
func (p *parser) parseQualifiedName() (string, error) {
	if p.tok.kind != tokIdent {
		return "", fmt.Errorf("line %d: expected identifier, found %q", p.tok.line, p.tok.text)
	}
	first := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	if p.tok.kind != tokPunct || p.tok.text != "." {
		return intern.String(first), nil // common single-identifier case: no builder
	}
	var sb strings.Builder
	sb.WriteString(first)
	for p.tok.kind == tokPunct && p.tok.text == "." {
		if err := p.advance(); err != nil {
			return "", err
		}
		if p.tok.kind != tokIdent {
			return "", fmt.Errorf("line %d: expected identifier after '.', found %q", p.tok.line, p.tok.text)
		}
		sb.WriteByte('.')
		sb.WriteString(p.tok.text)
		if err := p.advance(); err != nil {
			return "", err
		}
	}
	return intern.String(sb.String()), nil
}

var modifierWords = map[string]bool{
	"public": true, "private": true, "protected": true,
	"static": true, "final": true, "abstract": true, "synchronized": true,
	"native": true, "strictfp": true, "transient": true, "volatile": true,
}

func (p *parser) skipModifiers() error {
	for p.tok.kind == tokIdent && modifierWords[p.tok.text] {
		if err := p.advance(); err != nil {
			return err
		}
	}
	// Annotations: @Name or @Name(...)
	for p.tok.kind == tokPunct && p.tok.text == "@" {
		if err := p.advance(); err != nil {
			return err
		}
		if _, err := p.parseQualifiedName(); err != nil {
			return err
		}
		if p.tok.kind == tokPunct && p.tok.text == "(" {
			if err := p.skipBalanced("(", ")"); err != nil {
				return err
			}
		}
		if err := p.skipModifiers(); err != nil {
			return err
		}
		return nil
	}
	return nil
}

func (p *parser) parseTypeDecl() (*TypeDecl, error) {
	if err := p.skipModifiers(); err != nil {
		return nil, err
	}
	td := &TypeDecl{}
	switch {
	case p.tok.kind == tokIdent && p.tok.text == "class":
		td.Kind = KindClass
	case p.tok.kind == tokIdent && p.tok.text == "interface":
		td.Kind = KindInterface
	default:
		return nil, fmt.Errorf("line %d: expected class or interface, found %q", p.tok.line, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("line %d: expected type name, found %q", p.tok.line, p.tok.text)
	}
	td.Name = intern.String(p.tok.text)
	if err := p.advance(); err != nil {
		return nil, err
	}

	if p.tok.kind == tokIdent && p.tok.text == "extends" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		td.Extends = name
	}
	if p.tok.kind == tokIdent && p.tok.text == "implements" {
		for {
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.parseQualifiedName()
			if err != nil {
				return nil, err
			}
			td.Implements = append(td.Implements, name)
			if p.tok.kind != tokPunct || p.tok.text != "," {
				break
			}
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if err := p.parseTypeBody(td); err != nil {
		return nil, err
	}
	return td, nil
}

// parseTypeBody scans member declarations until the matching '}'. It
// recognises method declarations by the pattern ident '(' … ')' '{' and
// records the calls inside their bodies; everything else (fields, nested
// types) is skipped structurally.
func (p *parser) parseTypeBody(td *TypeDecl) error {
	for {
		switch {
		case p.tok.kind == tokEOF:
			return fmt.Errorf("unexpected EOF in type body of %s", td.Name)
		case p.tok.kind == tokPunct && p.tok.text == "}":
			return p.advance()
		case p.tok.kind == tokIdent && (p.tok.text == "class" || p.tok.text == "interface"):
			nested, err := p.parseTypeDecl()
			if err != nil {
				return err
			}
			// Nested types surface their methods on the parent with a
			// qualified name so call extraction stays flat.
			for _, m := range nested.Methods {
				m.Name = nested.Name + "." + m.Name
				td.Methods = append(td.Methods, m)
			}
		default:
			if err := p.parseMember(td); err != nil {
				return err
			}
		}
	}
}

// parseMember handles one field or method. Strategy: consume tokens until
// we can classify the member — a '(' after an identifier makes it a method
// (the identifier is its name); a ';' or '=' makes it a field.
func (p *parser) parseMember(td *TypeDecl) error {
	if err := p.skipModifiers(); err != nil {
		return err
	}
	if p.tok.kind == tokIdent && (p.tok.text == "class" || p.tok.text == "interface") {
		nested, err := p.parseTypeDecl()
		if err != nil {
			return err
		}
		for _, m := range nested.Methods {
			m.Name = nested.Name + "." + m.Name
			td.Methods = append(td.Methods, m)
		}
		return nil
	}
	var lastIdent string
	for {
		switch {
		case p.tok.kind == tokEOF:
			return fmt.Errorf("unexpected EOF in member of %s", td.Name)
		case p.tok.kind == tokIdent:
			lastIdent = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
		case p.tok.kind == tokPunct && p.tok.text == "(":
			// Method declaration: name is lastIdent.
			if lastIdent == "" {
				return fmt.Errorf("line %d: '(' without a member name in %s", p.tok.line, td.Name)
			}
			params, err := p.parseParams()
			if err != nil {
				return err
			}
			// throws clause
			if p.tok.kind == tokIdent && p.tok.text == "throws" {
				if err := p.advance(); err != nil {
					return err
				}
				for p.tok.kind == tokIdent || p.tok.kind == tokPunct && (p.tok.text == "," || p.tok.text == ".") {
					if err := p.advance(); err != nil {
						return err
					}
				}
			}
			m := MethodDecl{Name: intern.String(lastIdent), Params: params}
			switch {
			case p.tok.kind == tokPunct && p.tok.text == "{":
				calls, err := p.parseMethodBody()
				if err != nil {
					return err
				}
				m.Calls = calls
			case p.tok.kind == tokPunct && p.tok.text == ";":
				if err := p.advance(); err != nil { // abstract/interface method
					return err
				}
			default:
				return fmt.Errorf("line %d: expected '{' or ';' after method %s, found %q", p.tok.line, lastIdent, p.tok.text)
			}
			td.Methods = append(td.Methods, m)
			return nil
		case p.tok.kind == tokPunct && (p.tok.text == ";"):
			return p.advance() // field without initialiser
		case p.tok.kind == tokPunct && p.tok.text == "=":
			// Field initialiser: skip to the terminating ';' at depth 0.
			return p.skipToSemicolon()
		case p.tok.kind == tokPunct:
			// Type punctuation in declarations: dots, generics, arrays.
			if err := p.advance(); err != nil {
				return err
			}
		default:
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
}

func (p *parser) skipToSemicolon() error {
	depth := 0
	for {
		switch {
		case p.tok.kind == tokEOF:
			return fmt.Errorf("unexpected EOF in initialiser")
		case p.tok.kind == tokPunct && (p.tok.text == "(" || p.tok.text == "{" || p.tok.text == "["):
			depth++
		case p.tok.kind == tokPunct && (p.tok.text == ")" || p.tok.text == "}" || p.tok.text == "]"):
			depth--
		case p.tok.kind == tokPunct && p.tok.text == ";" && depth == 0:
			return p.advance()
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

// skipBalanced consumes from the current open token through its matching
// close token.
func (p *parser) skipBalanced(open, close string) error {
	if p.tok.kind != tokPunct || p.tok.text != open {
		return fmt.Errorf("line %d: expected %q", p.tok.line, open)
	}
	depth := 0
	for {
		if p.tok.kind == tokEOF {
			return fmt.Errorf("unexpected EOF looking for %q", close)
		}
		if p.tok.kind == tokPunct {
			switch p.tok.text {
			case open:
				depth++
			case close:
				depth--
				if depth == 0 {
					return p.advance()
				}
			}
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

// parseParams consumes a method declaration's '(' … ')' and returns the
// parameter names: the last identifier of each top-level comma-separated
// segment ("final Map<String, Integer> opts" → "opts").
func (p *parser) parseParams() ([]string, error) {
	if p.tok.kind != tokPunct || p.tok.text != "(" {
		return nil, fmt.Errorf("line %d: expected '('", p.tok.line)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var names []string
	depth := 0 // nested (), [] and <> — commas inside are not separators
	last := ""
	for {
		switch {
		case p.tok.kind == tokEOF:
			return nil, fmt.Errorf("unexpected EOF in parameter list")
		case p.tok.kind == tokIdent:
			last = p.tok.text
		case p.tok.kind == tokPunct && (p.tok.text == "(" || p.tok.text == "[" || p.tok.text == "<"):
			depth++
		case p.tok.kind == tokPunct && (p.tok.text == "]" || p.tok.text == ">"):
			if depth > 0 {
				depth--
			}
		case p.tok.kind == tokPunct && p.tok.text == ")":
			if depth == 0 {
				if last != "" {
					names = append(names, intern.String(last))
				}
				return names, p.advance()
			}
			depth--
		case p.tok.kind == tokPunct && p.tok.text == "," && depth == 0:
			if last != "" {
				names = append(names, intern.String(last))
			}
			last = ""
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// bodyKeywords are identifiers that look like an unqualified call when
// followed by '(' but are control flow or constructor syntax.
var bodyKeywords = map[string]bool{
	"if": true, "for": true, "while": true, "switch": true, "catch": true,
	"return": true, "throw": true, "new": true, "synchronized": true,
	"assert": true, "do": true, "else": true, "try": true, "finally": true,
	"super": true,
}

// callFrame tracks one open parenthesis inside a method body. Frames whose
// paren opened a call capture its argument expressions; grouping and
// control parens carry callIdx -1.
type callFrame struct {
	callIdx int      // index into calls, -1 for non-call parens
	args    []string // completed argument expressions
	cur     []string // token texts of the argument being read
}

// parseMethodBody walks a balanced '{ … }' region recording every call: a
// (possibly dotted) identifier chain immediately followed by '('. Argument
// expressions are captured per call — tokens stream into every open frame,
// so an inner call's text is part of the enclosing call's argument.
func (p *parser) parseMethodBody() ([]Call, error) {
	if p.tok.kind != tokPunct || p.tok.text != "{" {
		return nil, fmt.Errorf("line %d: expected '{'", p.tok.line)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var calls []Call
	braces := 1
	var frames []callFrame
	var chain []string // pending identifier chain
	chainDotted := false
	prevNew := false    // the chain was preceded by `new`
	pendingAssign := "" // statement-level `name = …`: claims the next top-level call
	flush := func() { chain = chain[:0]; chainDotted = false; prevNew = false }
	// pushText appends a token's text to the in-progress argument of every
	// open frame.
	pushText := func(text string) {
		for i := range frames {
			frames[i].cur = append(frames[i].cur, text)
		}
	}
	endArg := func(f *callFrame) {
		if len(f.cur) > 0 {
			f.args = append(f.args, intern.String(joinExpr(f.cur)))
			f.cur = f.cur[:0]
		}
	}
	for {
		switch {
		case p.tok.kind == tokEOF:
			return nil, fmt.Errorf("unexpected EOF in method body")
		case p.tok.kind == tokIdent:
			if !chainDotted && len(chain) > 0 {
				// New statement word (e.g. "String s1"); remember whether the
				// discarded word was `new` — then the coming name( is a
				// constructor, not a call.
				prevNew = len(chain) == 1 && chain[0] == "new"
				chain = chain[:0]
			}
			chain = append(chain, p.tok.text)
			chainDotted = false
			pushText(p.tok.text)
		case p.tok.kind == tokPunct && p.tok.text == ".":
			chainDotted = true
			pushText(".")
		case p.tok.kind == tokPunct && p.tok.text == "(":
			callIdx := -1
			if !prevNew && len(chain) > 0 && !(len(chain) == 1 && bodyKeywords[chain[0]]) {
				recv := ""
				if len(chain) > 1 {
					recv = intern.String(strings.Join(chain[:len(chain)-1], "."))
				}
				c := Call{
					Receiver: recv,
					Name:     intern.String(chain[len(chain)-1]),
					Line:     p.tok.line,
				}
				if len(frames) == 0 && pendingAssign != "" {
					c.Assign = pendingAssign
					pendingAssign = ""
				}
				callIdx = len(calls)
				calls = append(calls, c)
			}
			pushText("(") // before the new frame: the paren belongs to enclosing args
			frames = append(frames, callFrame{callIdx: callIdx})
			flush()
		case p.tok.kind == tokPunct && p.tok.text == ")":
			if n := len(frames); n > 0 {
				f := &frames[n-1]
				endArg(f)
				if f.callIdx >= 0 {
					calls[f.callIdx].Args = f.args
				}
				frames = frames[:n-1]
			}
			pushText(")")
			flush()
		case p.tok.kind == tokPunct && p.tok.text == ",":
			if n := len(frames); n > 0 {
				endArg(&frames[n-1])
				for i := 0; i < n-1; i++ {
					frames[i].cur = append(frames[i].cur, ",")
				}
			}
			flush()
		case p.tok.kind == tokPunct && p.tok.text == "=":
			if len(frames) == 0 && len(chain) > 0 {
				pendingAssign = intern.String(chain[len(chain)-1])
			}
			pushText("=")
			flush()
		case p.tok.kind == tokPunct && p.tok.text == ";":
			if len(frames) == 0 {
				pendingAssign = ""
			}
			pushText(";")
			flush()
		case p.tok.kind == tokPunct && p.tok.text == "{":
			braces++
			flush()
		case p.tok.kind == tokPunct && p.tok.text == "}":
			braces--
			if braces == 0 {
				return calls, p.advance()
			}
			flush()
		default:
			pushText(p.tok.text)
			flush()
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// joinExpr renders captured argument tokens back to compact expression
// text: tight around member access and call punctuation, spaced elsewhere.
func joinExpr(toks []string) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 && needSpace(toks[i-1], t) {
			sb.WriteByte(' ')
		}
		sb.WriteString(t)
	}
	return sb.String()
}

func needSpace(prev, cur string) bool {
	switch cur {
	case ".", ",", "(", ")", "]", ";":
		return false
	}
	switch prev {
	case ".", "(", "[", "!":
		return false
	}
	return true
}
