package javaparser

import (
	"reflect"
	"strings"
	"testing"
)

const src = `// Decompiled with sjadx from WebActivity.java
package com.example.app;

import android.app.Activity;
import android.webkit.WebView;
import androidx.browser.customtabs.CustomTabsIntent;

public class WebActivity extends Activity implements Runnable, AutoCloseable {
    private WebView view;
    private static final String HOME = "https://example.com";

    public void onCreate() {
        WebView v1 = new WebView(a0);
        v1.loadUrl("https://example.com");
        v1.addJavascriptInterface(a0, a1);
        if (__cond != 0) {
            v1.evaluateJavascript("window.x=1", a1);
        }
        return;
    }

    public void run() {
        CustomTabsIntent.Builder.build();
        this.helper();
    }

    private void helper() { }

    abstract void later();
}
`

func TestParseHeader(t *testing.T) {
	u, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if u.Package != "com.example.app" {
		t.Errorf("Package = %q", u.Package)
	}
	wantImports := []string{
		"android.app.Activity",
		"android.webkit.WebView",
		"androidx.browser.customtabs.CustomTabsIntent",
	}
	if !reflect.DeepEqual(u.Imports, wantImports) {
		t.Errorf("Imports = %v", u.Imports)
	}
	if len(u.Types) != 1 {
		t.Fatalf("Types = %d, want 1", len(u.Types))
	}
	td := u.Types[0]
	if td.Name != "WebActivity" || td.Extends != "Activity" {
		t.Errorf("type = %q extends %q", td.Name, td.Extends)
	}
	if !reflect.DeepEqual(td.Implements, []string{"Runnable", "AutoCloseable"}) {
		t.Errorf("Implements = %v", td.Implements)
	}
}

func TestParseMethodsAndCalls(t *testing.T) {
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	td := u.Types[0]
	names := make([]string, len(td.Methods))
	for i, m := range td.Methods {
		names[i] = m.Name
	}
	if !reflect.DeepEqual(names, []string{"onCreate", "run", "helper", "later"}) {
		t.Fatalf("methods = %v", names)
	}
	onCreate := td.Methods[0]
	var got []string
	for _, c := range onCreate.Calls {
		got = append(got, c.Receiver+"."+c.Name)
	}
	want := []string{"v1.loadUrl", "v1.addJavascriptInterface", "v1.evaluateJavascript"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("onCreate calls = %v, want %v", got, want)
	}
	run := td.Methods[1]
	if len(run.Calls) != 2 || run.Calls[0].Receiver != "CustomTabsIntent.Builder" || run.Calls[0].Name != "build" {
		t.Errorf("run calls = %+v", run.Calls)
	}
	if run.Calls[1].Receiver != "this" || run.Calls[1].Name != "helper" {
		t.Errorf("run second call = %+v", run.Calls[1])
	}
}

func TestResolve(t *testing.T) {
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ in, want string }{
		{"WebView", "android.webkit.WebView"},
		{"Activity", "android.app.Activity"},
		{"CustomTabsIntent.Builder", "androidx.browser.customtabs.CustomTabsIntent.Builder"},
		{"Helper", "com.example.app.Helper"},
		{"java.util.List", "java.util.List"},
	}
	for _, c := range cases {
		if got := u.Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestResolveTable pins Resolve's edge cases against hand-built units:
// Outer.Inner against an imported outer type, same-package fallback with
// and without a package declaration, names that are already qualified, and
// the import-shadowing order.
func TestResolveTable(t *testing.T) {
	cases := []struct {
		name    string
		pkg     string
		imports []string
		in      string
		want    string
	}{
		{"outer-inner via import", "p", []string{"androidx.browser.customtabs.CustomTabsIntent"},
			"CustomTabsIntent.Builder", "androidx.browser.customtabs.CustomTabsIntent.Builder"},
		{"outer-inner unimported stays as written", "p", nil,
			"Outer.Inner", "Outer.Inner"},
		{"dotted name never falls back to package", "p", nil,
			"a.B", "a.B"},
		{"already fully qualified", "p", []string{"android.webkit.WebView"},
			"android.webkit.WebView", "android.webkit.WebView"},
		{"simple name via import", "p", []string{"android.webkit.WebView"},
			"WebView", "android.webkit.WebView"},
		{"same-package fallback", "com.example.app", []string{"android.webkit.WebView"},
			"Helper", "com.example.app.Helper"},
		{"import wins over package fallback", "com.example.app", []string{"other.pkg.Helper"},
			"Helper", "other.pkg.Helper"},
		{"first matching import wins", "p", []string{"a.X", "b.X"},
			"X", "a.X"},
		{"default package, no import", "", nil,
			"Lone", "Lone"},
		{"default package outer-inner via import", "", []string{"lib.Outer"},
			"Outer.Inner", "lib.Outer.Inner"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			u := &CompilationUnit{Package: c.pkg, Imports: c.imports}
			if got := u.Resolve(c.in); got != c.want {
				t.Errorf("Resolve(%q) = %q, want %q", c.in, got, c.want)
			}
		})
	}
}

// The argument expressions and assignment targets feeding the webviewlint
// rules: literals, identifiers, nested calls, and def-use chains.
func TestCallArgumentCapture(t *testing.T) {
	u, err := Parse(`package p;
class C {
    void m(Bundle saved, String url) {
        settings.setJavaScriptEnabled(true);
        settings.setMixedContentMode(0);
        Object v1 = this.getIntent();
        Object v2 = v1.getDataString();
        router.route(v2, "fallback");
        view.loadUrl(v1.getDataString());
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := u.Types[0].Methods[0]
	if !reflect.DeepEqual(m.Params, []string{"saved", "url"}) {
		t.Errorf("Params = %v", m.Params)
	}
	byName := map[string]Call{}
	for _, c := range m.Calls {
		// First occurrence wins: v1.getDataString() appears again nested
		// inside the loadUrl argument.
		if _, ok := byName[c.Receiver+"."+c.Name]; !ok {
			byName[c.Receiver+"."+c.Name] = c
		}
	}
	checks := []struct {
		key    string
		args   []string
		assign string
	}{
		{"settings.setJavaScriptEnabled", []string{"true"}, ""},
		{"settings.setMixedContentMode", []string{"0"}, ""},
		{"this.getIntent", nil, "v1"},
		{"v1.getDataString", nil, "v2"},
		{"router.route", []string{"v2", `"fallback"`}, ""},
		{"view.loadUrl", []string{"v1.getDataString()"}, ""},
	}
	for _, c := range checks {
		got, ok := byName[c.key]
		if !ok {
			t.Errorf("call %s missing (have %v)", c.key, m.Calls)
			continue
		}
		if !reflect.DeepEqual(got.Args, c.args) {
			t.Errorf("%s Args = %#v, want %#v", c.key, got.Args, c.args)
		}
		if got.Assign != c.assign {
			t.Errorf("%s Assign = %q, want %q", c.key, got.Assign, c.assign)
		}
	}
	// The inner getDataString call is recorded too, inside the loadUrl arg.
	if len(m.Calls) != 7 {
		t.Errorf("calls = %d, want 7: %v", len(m.Calls), m.Calls)
	}
}

// Unqualified calls are recorded with an empty receiver, while control-flow
// keywords and constructors are not calls.
func TestUnqualifiedCallsAndKeywords(t *testing.T) {
	u, err := Parse(`package p;
class C {
    void m() {
        WebView v = new WebView(ctx);
        if (ready) {
            configure(v, true);
        }
        for (int i = 0; i < n; i++) {
            tick();
        }
        return;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range u.Types[0].Methods[0].Calls {
		got = append(got, c.Name)
	}
	if !reflect.DeepEqual(got, []string{"configure", "tick"}) {
		t.Errorf("calls = %v", got)
	}
}

func TestParseExtendsFQN(t *testing.T) {
	u, err := Parse(`package p; public class W extends android.webkit.WebView { }`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Types[0].Extends != "android.webkit.WebView" {
		t.Errorf("Extends = %q", u.Types[0].Extends)
	}
}

func TestParseInterface(t *testing.T) {
	u, err := Parse(`package p; public interface Callback { void onDone(); }`)
	if err != nil {
		t.Fatal(err)
	}
	td := u.Types[0]
	if td.Kind != KindInterface || td.Name != "Callback" {
		t.Errorf("parsed %+v", td)
	}
	if len(td.Methods) != 1 || td.Methods[0].Name != "onDone" {
		t.Errorf("methods = %+v", td.Methods)
	}
}

func TestParseNestedClass(t *testing.T) {
	u, err := Parse(`package p;
public class Outer {
    public void a() { x.go(); }
    public static class Inner {
        public void b() { y.stop(); }
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	td := u.Types[0]
	var names []string
	for _, m := range td.Methods {
		names = append(names, m.Name)
	}
	if !reflect.DeepEqual(names, []string{"a", "Inner.b"}) {
		t.Errorf("methods = %v", names)
	}
}

func TestParseFieldInitialisers(t *testing.T) {
	u, err := Parse(`package p;
public class F {
    private int x = compute(1, 2);
    private String s = "a;b";
    public void m() { self.call(); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	td := u.Types[0]
	if len(td.Methods) != 1 || td.Methods[0].Name != "m" {
		t.Errorf("methods = %+v", td.Methods)
	}
}

func TestParseAnnotations(t *testing.T) {
	u, err := Parse(`package p;
public class A {
    @Override
    public void m() { a.b(); }
    @SuppressWarnings("x")
    public void n() { }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Types[0].Methods) != 2 {
		t.Errorf("methods = %+v", u.Types[0].Methods)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`package p; class X {`,            // unterminated body
		`package p; class {}`,             // missing name
		`package`,                         // dangling keyword
		`package p; class X extends {}`,   // missing supertype
		`package p; class X { void m() {`, // unterminated method
		"package p; class X { String s = \"unterminated; }",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", c)
		}
	}
}

func TestParseNoPackage(t *testing.T) {
	u, err := Parse(`class Default { }`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Package != "" || u.Types[0].Name != "Default" {
		t.Errorf("parsed %+v", u)
	}
	if got := u.Resolve("Default"); got != "Default" {
		t.Errorf("Resolve in default package = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	u, err := Parse(`
/* block
   comment */
package p; // trailing
class C {
    // line comment with class keyword inside
    void m() { /* inline */ a.b(); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Types[0].Methods) != 1 || len(u.Types[0].Methods[0].Calls) != 1 {
		t.Errorf("parsed %+v", u.Types[0].Methods)
	}
}

func TestImported(t *testing.T) {
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Imported("android.webkit.WebView") {
		t.Error("Imported(WebView) = false")
	}
	if u.Imported("android.webkit.CookieManager") {
		t.Error("Imported(CookieManager) = true")
	}
}

func TestStringsWithEscapes(t *testing.T) {
	u, err := Parse(`package p;
class S { void m() { log.print("quote \" and ; and }"); } }`)
	if err != nil {
		t.Fatal(err)
	}
	calls := u.Types[0].Methods[0].Calls
	if len(calls) != 1 || calls[0].Name != "print" {
		t.Errorf("calls = %+v", calls)
	}
}

func TestLargeInputNoQuadraticBlowup(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("package p;\nclass Big {\n")
	for i := 0; i < 2000; i++ {
		sb.WriteString("    void m")
		sb.WriteString(strings.Repeat("x", i%7))
		sb.WriteString("() { a.b(); c.d(); }\n")
	}
	sb.WriteString("}\n")
	u, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Types[0].Methods) != 2000 {
		t.Errorf("methods = %d", len(u.Types[0].Methods))
	}
}
