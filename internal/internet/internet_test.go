package internet

import (
	"io"
	"net/http"
	"testing"
)

func get(t *testing.T, in *Internet, url string) (int, string) {
	t.Helper()
	resp, err := in.Client().Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestExactHostRouting(t *testing.T) {
	in := New()
	in.RegisterFunc("a.example", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "site-a:"+r.URL.Path)
	})
	status, body := get(t, in, "https://a.example/page?x=1")
	if status != 200 || body != "site-a:/page" {
		t.Errorf("got %d %q", status, body)
	}
}

func TestSuffixRouting(t *testing.T) {
	in := New()
	in.RegisterFunc("*.cdn.example", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "cdn:"+r.Host)
	})
	if _, body := get(t, in, "https://img1.cdn.example/a.png"); body != "cdn:img1.cdn.example" {
		t.Errorf("body = %q", body)
	}
	if _, body := get(t, in, "https://cdn.example/root"); body != "cdn:cdn.example" {
		t.Errorf("apex body = %q", body)
	}
}

func TestCatchAllServesUnknownHosts(t *testing.T) {
	in := New()
	status, body := get(t, in, "https://never-registered.net/x")
	if status != 200 {
		t.Errorf("status = %d", status)
	}
	if body == "" {
		t.Error("catch-all body empty")
	}
}

func TestCustomCatchAll(t *testing.T) {
	in := New()
	in.CatchAll = http.NotFoundHandler()
	status, _ := get(t, in, "https://unknown.example/")
	if status != 404 {
		t.Errorf("status = %d", status)
	}
}

func TestPortsIgnoredInRouting(t *testing.T) {
	in := New()
	in.RegisterFunc("svc.example", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	if _, body := get(t, in, "http://svc.example:8080/"); body != "ok" {
		t.Errorf("port routing failed: %q", body)
	}
}

func TestRedirectsFollowed(t *testing.T) {
	in := New()
	in.RegisterFunc("from.example", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "https://to.example/landed", http.StatusFound)
	})
	in.RegisterFunc("to.example", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "landed")
	})
	status, body := get(t, in, "https://from.example/")
	if status != 200 || body != "landed" {
		t.Errorf("got %d %q", status, body)
	}
}
