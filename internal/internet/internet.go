// Package internet provides an in-process "internet": an http.RoundTripper
// that dispatches requests by host to registered handlers. The measurement
// device, its browser and every WebView share one Internet, so visits to
// synthetic top sites, the controlled measurement page, ad networks and
// tracker endpoints all resolve without real sockets — while unregistered
// hosts still answer (with an empty page) so that injected code contacting
// arbitrary endpoints is observable rather than an error.
package internet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
)

// Internet is a host-routing RoundTripper.
type Internet struct {
	mu       sync.RWMutex
	hosts    map[string]http.Handler
	suffixes map[string]http.Handler // "*.example.com" registrations
	// CatchAll serves unregistered hosts; nil uses an empty 200 page.
	CatchAll http.Handler
}

// New returns an empty Internet.
func New() *Internet {
	return &Internet{
		hosts:    make(map[string]http.Handler),
		suffixes: make(map[string]http.Handler),
	}
}

// Register serves a host (exact match) with the handler. A leading "*."
// registers the handler for every subdomain.
func (in *Internet) Register(host string, h http.Handler) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if strings.HasPrefix(host, "*.") {
		in.suffixes[host[2:]] = h
		return
	}
	in.hosts[host] = h
}

// RegisterFunc is Register with a HandlerFunc.
func (in *Internet) RegisterFunc(host string, f http.HandlerFunc) {
	in.Register(host, f)
}

// Handler returns the handler serving a host, falling back to suffix
// registrations and the catch-all.
func (in *Internet) handler(host string) http.Handler {
	// Strip any port.
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i:], "]") {
		host = host[:i]
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if h, ok := in.hosts[host]; ok {
		return h
	}
	for suffix, h := range in.suffixes {
		if host == suffix || strings.HasSuffix(host, "."+suffix) {
			return h
		}
	}
	if in.CatchAll != nil {
		return in.CatchAll
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><head><title>"+r.Host+"</title></head><body></body></html>")
	})
}

// RoundTrip implements http.RoundTripper by serving the request with the
// registered handler through an in-memory recorder.
func (in *Internet) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	in.handler(req.URL.Host).ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// Client returns an http.Client routed through this Internet.
func (in *Internet) Client() *http.Client {
	return &http.Client{Transport: in}
}
