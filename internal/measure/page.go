package measure

// TestPageHTML is the controlled page: an HTML5 kitchen-sink of common
// elements (after Bracco et al.'s html5-test-page [46]) whose only script
// is the Trace.js interceptor. Injected code operating on this page
// exercises the full element variety the paper's Table 9 records.
const TestPageHTML = `<!DOCTYPE html>
<html lang="en">
<head>
  <meta charset="utf-8">
  <meta name="viewport" content="width=device-width, initial-scale=1">
  <meta name="description" content="HTML5 test page for WebView measurements">
  <title>HTML5 Test Page</title>
  <script src="/trace.js"></script>
</head>
<body id="top">
  <header id="header" class="page-header">
    <h1>HTML5 Test Page</h1>
    <nav><ul>
      <li><a href="#text">Text</a></li>
      <li><a href="#embedded">Embedded</a></li>
      <li><a href="#forms">Forms</a></li>
    </ul></nav>
  </header>
  <main id="content">
    <section id="text">
      <h2>Text elements</h2>
      <p>A <a href="https://example.com/">link</a>, <em>emphasis</em>,
         <strong>strong</strong>, <code>code</code>, <mark>mark</mark>,
         <small>small</small> and a line<br>break.</p>
      <blockquote cite="https://example.com/quote">A quotation block.</blockquote>
      <ol><li>Ordered one</li><li>Ordered two</li></ol>
      <ul><li>Unordered one</li><li>Unordered two</li></ul>
      <dl><dt>Term</dt><dd>Definition</dd></dl>
      <table>
        <caption>A table</caption>
        <thead><tr><th>Head A</th><th>Head B</th></tr></thead>
        <tbody><tr><td>Cell 1</td><td>Cell 2</td></tr></tbody>
      </table>
      <pre>preformatted   text</pre>
      <hr>
    </section>
    <section id="embedded">
      <h2>Embedded content</h2>
      <img src="/pixel.png" alt="a pixel" width="1" height="1">
      <figure><img src="/pixel.png" alt="figure"><figcaption>Caption</figcaption></figure>
      <video controls width="320"><source src="/clip.mp4" type="video/mp4"></video>
      <audio controls><source src="/tone.ogg" type="audio/ogg"></audio>
      <iframe src="/frame.html" title="frame" width="100" height="50"></iframe>
    </section>
    <section id="forms">
      <h2>Forms</h2>
      <form action="/submit" method="post" id="checkout-form">
        <label>Name <input type="text" name="name" placeholder="Full name"></label>
        <label>Email <input type="email" name="email"></label>
        <label>Card <input type="text" name="card" autocomplete="cc-number"></label>
        <label>Address <textarea name="address"></textarea></label>
        <select name="country"><option>US</option><option>ES</option></select>
        <input type="checkbox" name="save" id="save"><label for="save">Save</label>
        <button type="submit">Buy</button>
      </form>
    </section>
  </main>
  <footer id="footer"><p>Footer text</p></footer>
</body>
</html>
`

// TraceJS is the interception script: it wraps the Web-API methods on
// document, window and navigator so that any later (injected) caller is
// reported to the collection server, exactly like the Trace.js gist the
// paper deploys [64]. Element-level methods are reported by the runtime
// batch upload (ReportAPICalls) since element wrappers are per-node.
const TraceJS = `
(function() {
    function report(iface, method) {
        try {
            var xhr = new XMLHttpRequest();
            xhr.open("GET", "/collect?iface=" + iface + "&method=" + method);
            xhr.send();
        } catch (e) { }
    }
    function wrap(obj, iface, method) {
        var orig = obj[method];
        if (!orig) { return; }
        obj[method] = function(a, b, c) {
            report(iface, method);
            return orig.call(obj, a, b, c);
        };
    }
    var documentMethods = ["getElementById", "createElement", "querySelectorAll",
        "querySelector", "getElementsByTagName", "addEventListener",
        "removeEventListener"];
    for (var i = 0; i < documentMethods.length; i++) {
        wrap(document, "Document", documentMethods[i]);
    }
    wrap(navigator, "Navigator", "sendBeacon");
    window.__traceInstalled = true;
})();
`
