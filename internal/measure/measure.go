// Package measure implements the paper's controlled measurement
// infrastructure (§3.2.2): an HTTP server hosting the HTML5 test page
// (after Bracco et al. [46]) instrumented with a Trace.js-style script that
// overrides Web-API methods and reports every interception back to the
// server, where it is recorded per app. WebView visits are attributed by
// the X-Requested-With header the WebView stamps on every request.
package measure

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/android"
	"repro/internal/browsersim"
	"repro/internal/retry"
)

// MaxCollectBody caps the size of one POST /collect batch. Larger bodies
// are rejected with 413 instead of being buffered.
const MaxCollectBody = 1 << 20

// ErrEmptyTrace rejects a beacon carrying neither interface nor method —
// the malformed shape the collector used to drop silently.
var ErrEmptyTrace = errors.New("measure: trace has neither interface nor method")

// Trace is one intercepted Web-API call, attributed to the app whose
// WebView made the page visit.
type Trace struct {
	App       string `json:"app"`
	Interface string `json:"interface"`
	Method    string `json:"method"`
}

// Server hosts the controlled page and collects traces.
type Server struct {
	mu     sync.Mutex
	traces []Trace
}

// NewServer returns an empty collection server.
func NewServer() *Server { return &Server{} }

// Handler returns the HTTP surface:
//
//	GET /            the instrumented HTML5 test page
//	GET /trace.js    the Web-API interception script
//	GET /collect     one interception report (query: iface, method)
//	POST /collect    batched reports (JSON array of Trace)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, TestPageHTML)
	})
	mux.HandleFunc("GET /trace.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, TraceJS)
	})
	mux.HandleFunc("GET /collect", func(w http.ResponseWriter, r *http.Request) {
		batch, err := DecodeCollect(w, r)
		if err != nil {
			WriteCollectError(w, err)
			return
		}
		if err := s.Accept(r.Header.Get(android.XRequestedWithHeader), batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /collect", func(w http.ResponseWriter, r *http.Request) {
		batch, err := DecodeCollect(w, r)
		if err != nil {
			WriteCollectError(w, err)
			return
		}
		if err := s.Accept(r.Header.Get(android.XRequestedWithHeader), batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// DecodeCollect extracts the beacon batch from a /collect request — the
// one shared path for both the GET (query-parameter, single-beacon) and
// POST (JSON-array, body-capped) channels. POST bodies beyond
// MaxCollectBody fail with a *http.MaxBytesError, malformed JSON (or junk
// trailing the array) with a plain error; WriteCollectError maps both.
func DecodeCollect(w http.ResponseWriter, r *http.Request) ([]Trace, error) {
	if r.Method == http.MethodGet {
		return []Trace{{
			Interface: r.URL.Query().Get("iface"),
			Method:    r.URL.Query().Get("method"),
		}}, nil
	}
	var batch []Trace
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxCollectBody))
	if err := dec.Decode(&batch); err != nil {
		return nil, fmt.Errorf("measure: bad batch: %w", err)
	}
	if dec.More() {
		return nil, errors.New("measure: bad batch: trailing data after array")
	}
	return batch, nil
}

// WriteCollectError answers a DecodeCollect failure: 413 when the body
// blew the cap, 400 for everything else. Never silent.
func WriteCollectError(w http.ResponseWriter, err error) {
	var maxBytes *http.MaxBytesError
	if errors.As(err, &maxBytes) {
		http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// Accept records a batch attributed to app (beacons carrying their own App
// keep it). A beacon with neither interface nor method fails the whole
// batch with ErrEmptyTrace and records nothing — the caller answers 400
// instead of silently dropping. Accept is the sink the serving plane
// drains into; it is safe for concurrent use.
func (s *Server) Accept(app string, batch []Trace) error {
	for _, tr := range batch {
		if tr.Interface == "" && tr.Method == "" {
			return ErrEmptyTrace
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tr := range batch {
		if tr.App == "" {
			tr.App = app
		}
		s.traces = append(s.traces, tr)
	}
	return nil
}

// Traces returns every collected trace.
func (s *Server) Traces() []Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Trace(nil), s.traces...)
}

// ForApp returns the distinct (interface, method) pairs recorded for one
// app, sorted — the rows of Table 9.
func (s *Server) ForApp(app string) []Trace {
	seen := make(map[Trace]bool)
	var out []Trace
	for _, tr := range s.Traces() {
		if tr.App != app {
			continue
		}
		key := Trace{Interface: tr.Interface, Method: tr.Method}
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Interface != out[j].Interface {
			return out[i].Interface < out[j].Interface
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// Reset clears collected traces between experiments.
func (s *Server) Reset() {
	s.mu.Lock()
	s.traces = nil
	s.mu.Unlock()
}

// ReportAPICalls uploads the Element-level API calls the page runtime
// recorded natively (the parts Trace.js cannot wrap because element
// wrappers are created per node) as a batch.
//
// The upload runs through policy (nil = one attempt): a 429/503 from an
// overloaded collector classifies as transient with the server-advised
// Retry-After delay, a 4xx as permanent, so the client backs off exactly
// as the serving plane asks instead of hammering it.
func ReportAPICalls(ctx context.Context, client *http.Client, policy *retry.Policy, collectURL, app string, calls []browsersim.APICall) error {
	if len(calls) == 0 {
		return nil
	}
	batch := make([]Trace, 0, len(calls))
	for _, c := range calls {
		batch = append(batch, Trace{App: app, Interface: c.Interface, Method: c.Method})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return fmt.Errorf("measure: %w", err)
	}
	_, err = retry.Do(ctx, policy, func(ctx context.Context) (struct{}, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, collectURL, newReader(body))
		if err != nil {
			return struct{}{}, retry.Permanent(fmt.Errorf("measure: %w", err))
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(android.XRequestedWithHeader, app)
		resp, err := client.Do(req)
		if err != nil {
			return struct{}{}, retry.Transient(fmt.Errorf("measure: %w", err))
		}
		resp.Body.Close()
		return struct{}{}, retry.ClassifyHTTPResponse(resp)
	})
	if err != nil {
		return fmt.Errorf("measure: report %s: %w", app, err)
	}
	return nil
}

func newReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct {
	b []byte
	i int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
