// Package measure implements the paper's controlled measurement
// infrastructure (§3.2.2): an HTTP server hosting the HTML5 test page
// (after Bracco et al. [46]) instrumented with a Trace.js-style script that
// overrides Web-API methods and reports every interception back to the
// server, where it is recorded per app. WebView visits are attributed by
// the X-Requested-With header the WebView stamps on every request.
package measure

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/android"
	"repro/internal/browsersim"
)

// Trace is one intercepted Web-API call, attributed to the app whose
// WebView made the page visit.
type Trace struct {
	App       string `json:"app"`
	Interface string `json:"interface"`
	Method    string `json:"method"`
}

// Server hosts the controlled page and collects traces.
type Server struct {
	mu     sync.Mutex
	traces []Trace
}

// NewServer returns an empty collection server.
func NewServer() *Server { return &Server{} }

// Handler returns the HTTP surface:
//
//	GET /            the instrumented HTML5 test page
//	GET /trace.js    the Web-API interception script
//	GET /collect     one interception report (query: iface, method)
//	POST /collect    batched reports (JSON array of Trace)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, TestPageHTML)
	})
	mux.HandleFunc("GET /trace.js", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, TraceJS)
	})
	mux.HandleFunc("GET /collect", func(w http.ResponseWriter, r *http.Request) {
		s.record(Trace{
			App:       r.Header.Get(android.XRequestedWithHeader),
			Interface: r.URL.Query().Get("iface"),
			Method:    r.URL.Query().Get("method"),
		})
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /collect", func(w http.ResponseWriter, r *http.Request) {
		var batch []Trace
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&batch); err != nil {
			http.Error(w, "bad batch", http.StatusBadRequest)
			return
		}
		app := r.Header.Get(android.XRequestedWithHeader)
		for _, tr := range batch {
			if tr.App == "" {
				tr.App = app
			}
			s.record(tr)
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func (s *Server) record(tr Trace) {
	if tr.Interface == "" && tr.Method == "" {
		return
	}
	s.mu.Lock()
	s.traces = append(s.traces, tr)
	s.mu.Unlock()
}

// Traces returns every collected trace.
func (s *Server) Traces() []Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Trace(nil), s.traces...)
}

// ForApp returns the distinct (interface, method) pairs recorded for one
// app, sorted — the rows of Table 9.
func (s *Server) ForApp(app string) []Trace {
	seen := make(map[Trace]bool)
	var out []Trace
	for _, tr := range s.Traces() {
		if tr.App != app {
			continue
		}
		key := Trace{Interface: tr.Interface, Method: tr.Method}
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Interface != out[j].Interface {
			return out[i].Interface < out[j].Interface
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// Reset clears collected traces between experiments.
func (s *Server) Reset() {
	s.mu.Lock()
	s.traces = nil
	s.mu.Unlock()
}

// ReportAPICalls uploads the Element-level API calls the page runtime
// recorded natively (the parts Trace.js cannot wrap because element
// wrappers are created per node) as a batch.
func ReportAPICalls(client *http.Client, collectURL, app string, calls []browsersim.APICall) error {
	batch := make([]Trace, 0, len(calls))
	for _, c := range calls {
		batch = append(batch, Trace{App: app, Interface: c.Interface, Method: c.Method})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return fmt.Errorf("measure: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, collectURL, newReader(body))
	if err != nil {
		return fmt.Errorf("measure: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(android.XRequestedWithHeader, app)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("measure: %w", err)
	}
	resp.Body.Close()
	return nil
}

func newReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct {
	b []byte
	i int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
