package measure

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/webview"
)

func setup(t *testing.T) (*Server, *httptest.Server, *webview.WebView) {
	t.Helper()
	srv := NewServer()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	wv := webview.New(webview.Config{ID: "wv", AppPackage: "com.facebook.katana", Client: hs.Client()})
	wv.GetSettings().JavaScriptEnabled = true
	return srv, hs, wv
}

func TestTestPageLoadsAndInstallsTrace(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatalf("LoadURL: %v", err)
	}
	page := wv.Page()
	if page.Doc.Title != "HTML5 Test Page" {
		t.Errorf("title = %q", page.Doc.Title)
	}
	if got := page.VM.Global.Get("__traceInstalled").Truthy(); !got {
		t.Fatalf("trace.js did not install (console: %v)", page.Console)
	}
	_ = srv
}

func TestInjectedCallsAreReported(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	// Injected code uses document APIs; the wrapped methods must phone
	// home with the app attribution from X-Requested-With.
	err := wv.EvaluateJavascript(`
document.getElementById("checkout-form");
document.createElement("script");
document.querySelectorAll("input");`, nil)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	traces := srv.ForApp("com.facebook.katana")
	want := map[[2]string]bool{
		{"Document", "getElementById"}:   false,
		{"Document", "createElement"}:    false,
		{"Document", "querySelectorAll"}: false,
	}
	for _, tr := range traces {
		key := [2]string{tr.Interface, tr.Method}
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("trace %v not collected (have %+v)", key, traces)
		}
	}
}

func TestWrappedMethodsStillWork(t *testing.T) {
	_, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	var result string
	if err := wv.EvaluateJavascript(`document.getElementById("top").tagName`, func(r string) { result = r }); err != nil {
		t.Fatal(err)
	}
	if result != "BODY" {
		t.Errorf("wrapped getElementById broken: %q", result)
	}
}

func TestBatchReport(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if err := wv.EvaluateJavascript(`
var metas = document.getElementsByTagName("meta");
metas[0].getAttribute("charset");`, nil); err != nil {
		t.Fatal(err)
	}
	// Upload the runtime-recorded element-level calls.
	if err := ReportAPICalls(hs.Client(), hs.URL+"/collect", "com.facebook.katana", wv.Page().APICalls()); err != nil {
		t.Fatalf("ReportAPICalls: %v", err)
	}
	var sawElementCall bool
	for _, tr := range srv.ForApp("com.facebook.katana") {
		if tr.Interface == "HTMLMetaElement" && tr.Method == "getAttribute" {
			sawElementCall = true
		}
	}
	if !sawElementCall {
		t.Errorf("element-level trace missing: %+v", srv.ForApp("com.facebook.katana"))
	}
}

func TestNoInjectionNoTraces(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	// A plain page load makes no wrapped calls after trace installation:
	// Snapchat/Twitter/Reddit show empty Table 9 rows.
	if got := srv.ForApp("com.facebook.katana"); len(got) != 0 {
		t.Errorf("traces without injection: %+v", got)
	}
}

func TestReset(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	_ = wv.EvaluateJavascript(`document.createElement("div")`, nil)
	if len(srv.Traces()) == 0 {
		t.Fatal("no traces to reset")
	}
	srv.Reset()
	if len(srv.Traces()) != 0 {
		t.Error("Reset left traces")
	}
}
