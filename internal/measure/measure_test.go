package measure

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/browsersim"
	"repro/internal/retry"
	"repro/internal/webview"
)

func setup(t *testing.T) (*Server, *httptest.Server, *webview.WebView) {
	t.Helper()
	srv := NewServer()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	wv := webview.New(webview.Config{ID: "wv", AppPackage: "com.facebook.katana", Client: hs.Client()})
	wv.GetSettings().JavaScriptEnabled = true
	return srv, hs, wv
}

func TestTestPageLoadsAndInstallsTrace(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatalf("LoadURL: %v", err)
	}
	page := wv.Page()
	if page.Doc.Title != "HTML5 Test Page" {
		t.Errorf("title = %q", page.Doc.Title)
	}
	if got := page.VM.Global.Get("__traceInstalled").Truthy(); !got {
		t.Fatalf("trace.js did not install (console: %v)", page.Console)
	}
	_ = srv
}

func TestInjectedCallsAreReported(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	// Injected code uses document APIs; the wrapped methods must phone
	// home with the app attribution from X-Requested-With.
	err := wv.EvaluateJavascript(`
document.getElementById("checkout-form");
document.createElement("script");
document.querySelectorAll("input");`, nil)
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	traces := srv.ForApp("com.facebook.katana")
	want := map[[2]string]bool{
		{"Document", "getElementById"}:   false,
		{"Document", "createElement"}:    false,
		{"Document", "querySelectorAll"}: false,
	}
	for _, tr := range traces {
		key := [2]string{tr.Interface, tr.Method}
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("trace %v not collected (have %+v)", key, traces)
		}
	}
}

func TestWrappedMethodsStillWork(t *testing.T) {
	_, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	var result string
	if err := wv.EvaluateJavascript(`document.getElementById("top").tagName`, func(r string) { result = r }); err != nil {
		t.Fatal(err)
	}
	if result != "BODY" {
		t.Errorf("wrapped getElementById broken: %q", result)
	}
}

func TestBatchReport(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	if err := wv.EvaluateJavascript(`
var metas = document.getElementsByTagName("meta");
metas[0].getAttribute("charset");`, nil); err != nil {
		t.Fatal(err)
	}
	// Upload the runtime-recorded element-level calls.
	if err := ReportAPICalls(context.Background(), hs.Client(), nil, hs.URL+"/collect", "com.facebook.katana", wv.Page().APICalls()); err != nil {
		t.Fatalf("ReportAPICalls: %v", err)
	}
	var sawElementCall bool
	for _, tr := range srv.ForApp("com.facebook.katana") {
		if tr.Interface == "HTMLMetaElement" && tr.Method == "getAttribute" {
			sawElementCall = true
		}
	}
	if !sawElementCall {
		t.Errorf("element-level trace missing: %+v", srv.ForApp("com.facebook.katana"))
	}
}

func TestNoInjectionNoTraces(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	// A plain page load makes no wrapped calls after trace installation:
	// Snapchat/Twitter/Reddit show empty Table 9 rows.
	if got := srv.ForApp("com.facebook.katana"); len(got) != 0 {
		t.Errorf("traces without injection: %+v", got)
	}
}

func TestReset(t *testing.T) {
	srv, hs, wv := setup(t)
	if err := wv.LoadURL(context.Background(), hs.URL+"/"); err != nil {
		t.Fatal(err)
	}
	_ = wv.EvaluateJavascript(`document.createElement("div")`, nil)
	if len(srv.Traces()) == 0 {
		t.Fatal("no traces to reset")
	}
	srv.Reset()
	if len(srv.Traces()) != 0 {
		t.Error("Reset left traces")
	}
}

func TestCollectRejectsMalformedBatch(t *testing.T) {
	srv := NewServer()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage", "{not json", http.StatusBadRequest},
		{"wrong shape", `{"app":"x"}`, http.StatusBadRequest},
		{"trailing data", `[]{"x":1}`, http.StatusBadRequest},
		{"empty beacon", `[{"app":"com.x"}]`, http.StatusBadRequest},
		{"valid", `[{"interface":"Document","method":"createElement"}]`, http.StatusNoContent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/collect", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("POST %q = %d, want %d", tc.body, resp.StatusCode, tc.want)
			}
		})
	}
	if got := len(srv.Traces()); got != 1 {
		t.Errorf("traces after malformed batches = %d, want only the valid one", got)
	}
}

func TestCollectCapsBodySize(t *testing.T) {
	srv := NewServer()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	huge := `[{"interface":"Document","method":"` + strings.Repeat("m", MaxCollectBody) + `"}]`
	resp, err := http.Post(hs.URL+"/collect", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch = %d, want 413", resp.StatusCode)
	}
	if got := len(srv.Traces()); got != 0 {
		t.Errorf("oversized batch recorded %d traces", got)
	}
}

func TestCollectGetRejectsEmptyBeacon(t *testing.T) {
	srv := NewServer()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/collect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /collect with no params = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/collect?iface=Document&method=createElement")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("GET /collect with params = %d, want 204", resp.StatusCode)
	}
}

func TestReportAPICallsRetriesOn429(t *testing.T) {
	srv := NewServer()
	var rejected atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rejected.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "throttled", http.StatusTooManyRequests)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer gate.Close()
	p := &retry.Policy{MaxAttempts: 5, Seed: 1, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := ReportAPICalls(context.Background(), gate.Client(), p, gate.URL+"/collect", "com.x",
		[]browsersim.APICall{{Interface: "HTMLMetaElement", Method: "getAttribute"}})
	if err != nil {
		t.Fatalf("ReportAPICalls with retry: %v", err)
	}
	if got := rejected.Load(); got != 3 {
		t.Errorf("attempts = %d, want 2 rejects + 1 success", got)
	}
	if got := len(srv.ForApp("com.x")); got != 1 {
		t.Errorf("traces = %d, want 1", got)
	}
}
