package dalvik

import (
	"fmt"
	"strings"
)

// Disassemble renders the file as a human-readable listing, one class per
// block. The output is stable (classes and members appear in file order,
// which Encode makes name-sorted) and intended for debugging and golden
// tests, not for re-parsing.
func Disassemble(f *File) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; sdex v%d, %d classes, %d methods\n", f.Version, len(f.Classes), f.MethodCount())
	for i := range f.Classes {
		c := &f.Classes[i]
		sb.WriteString("\n.class ")
		sb.WriteString(flagString(c.Flags))
		sb.WriteString(c.Name)
		sb.WriteByte('\n')
		if c.SuperName != "" {
			fmt.Fprintf(&sb, ".super %s\n", c.SuperName)
		}
		for _, it := range c.Interfaces {
			fmt.Fprintf(&sb, ".implements %s\n", it)
		}
		if c.SourceFile != "" {
			fmt.Fprintf(&sb, ".source %q\n", c.SourceFile)
		}
		for _, fl := range c.Fields {
			fmt.Fprintf(&sb, ".field %s%s %s\n", flagString(fl.Flags), fl.Name, fl.Type)
		}
		for j := range c.Methods {
			m := &c.Methods[j]
			fmt.Fprintf(&sb, ".method %s%s%s\n", flagString(m.Flags), m.Name, m.Signature)
			for k, ins := range m.Code {
				fmt.Fprintf(&sb, "    %3d: %s\n", k, ins)
			}
			sb.WriteString(".end method\n")
		}
	}
	return sb.String()
}

func flagString(f AccessFlag) string {
	var parts []string
	for _, e := range [...]struct {
		bit  AccessFlag
		name string
	}{
		{AccPublic, "public"},
		{AccPrivate, "private"},
		{AccProtected, "protected"},
		{AccStatic, "static"},
		{AccFinal, "final"},
		{AccInterface, "interface"},
		{AccAbstract, "abstract"},
		{AccSynthetic, "synthetic"},
		{AccConstructor, "constructor"},
	} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, " ") + " "
}
