package dalvik

// Builder assembles a File incrementally. It is the programmatic front-end
// used by the corpus generator: callers open classes, append methods with
// instruction bodies, and finish with Build.
//
// The zero value is ready to use.
type Builder struct {
	file File
	cur  *Class
}

// NewBuilder returns an empty builder targeting the current format version.
func NewBuilder() *Builder {
	return &Builder{file: File{Version: FormatVersion}}
}

// Class opens a new class definition with the given dotted name and
// superclass and makes it current. It returns the builder for chaining.
func (b *Builder) Class(name, super string, flags AccessFlag) *Builder {
	b.file.Classes = append(b.file.Classes, Class{
		Name:      name,
		SuperName: super,
		Flags:     flags,
	})
	b.cur = &b.file.Classes[len(b.file.Classes)-1]
	return b
}

// Source sets the source-file attribute of the current class.
func (b *Builder) Source(file string) *Builder {
	b.mustCurrent()
	b.cur.SourceFile = file
	return b
}

// Implements appends interface names to the current class.
func (b *Builder) Implements(ifaces ...string) *Builder {
	b.mustCurrent()
	b.cur.Interfaces = append(b.cur.Interfaces, ifaces...)
	return b
}

// Field adds a field to the current class.
func (b *Builder) Field(name, typ string, flags AccessFlag) *Builder {
	b.mustCurrent()
	b.cur.Fields = append(b.cur.Fields, Field{Name: name, Type: typ, Flags: flags})
	return b
}

// Method adds a method with the given body to the current class.
func (b *Builder) Method(name, sig string, flags AccessFlag, code ...Instruction) *Builder {
	b.mustCurrent()
	b.cur.Methods = append(b.cur.Methods, Method{Name: name, Signature: sig, Flags: flags, Code: code})
	return b
}

// VoidMethod adds a public "(…)void" method that executes code and returns.
// A trailing return-void is appended automatically when missing, which keeps
// generator call sites free of boilerplate.
func (b *Builder) VoidMethod(name string, code ...Instruction) *Builder {
	if n := len(code); n == 0 || code[n-1].Op != OpReturnVoid {
		code = append(code, Return())
	}
	return b.Method(name, "()void", AccPublic, code...)
}

func (b *Builder) mustCurrent() {
	if b.cur == nil {
		panic("dalvik: Builder method called before Class")
	}
}

// Build validates and returns the accumulated file. The builder remains
// usable afterwards, but the returned File aliases its storage; callers that
// keep building should treat the result as read-only.
func (b *Builder) Build() (*File, error) {
	if err := b.file.Validate(); err != nil {
		return nil, err
	}
	return &b.file, nil
}

// MustBuild is Build for generator code where a validation failure is a
// programming error.
func (b *Builder) MustBuild() *File {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}
