package dalvik

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/adler32"
	"io"
)

// Decoding errors. ErrCorrupt wraps all structural failures so that callers
// (the analysis pipeline tolerates "broken APKs", mirroring the 242 broken
// files in the paper's dataset) can classify them with errors.Is.
var (
	ErrBadMagic   = errors.New("dalvik: bad magic")
	ErrBadVersion = errors.New("dalvik: unsupported version")
	ErrChecksum   = errors.New("dalvik: checksum mismatch")
	ErrCorrupt    = errors.New("dalvik: corrupt file")
)

type reader struct {
	r *bytes.Reader
}

func (d *reader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (d *reader) varint() (int64, error) {
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func (d *reader) str(n uint64) (string, error) {
	if poolTooLarge(n, d.r.Len()) {
		return "", fmt.Errorf("%w: string length %d exceeds input", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}

// Decode parses an sdex binary image produced by Encode. It verifies the
// magic, version and checksum before touching the pools, so corrupt input is
// rejected early and deterministically.
func Decode(data []byte) (*File, error) {
	if len(data) < 10 {
		return nil, fmt.Errorf("%w: short file (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:4]) != magic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint16(data[4:6])
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	sum := binary.LittleEndian.Uint32(data[6:10])
	body := data[10:]
	if adler32.Checksum(body) != sum {
		return nil, ErrChecksum
	}

	d := &reader{r: bytes.NewReader(body)}

	strs, err := d.readStringPool()
	if err != nil {
		return nil, err
	}
	types, err := d.readTypePool(strs)
	if err != nil {
		return nil, err
	}
	methods, err := d.readMethodPool(strs, types)
	if err != nil {
		return nil, err
	}

	nClasses, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if poolTooLarge(nClasses, d.r.Len()+1) {
		return nil, fmt.Errorf("%w: class count %d exceeds input", ErrCorrupt, nClasses)
	}
	f := &File{Version: version, Classes: make([]Class, 0, nClasses)}
	for i := uint64(0); i < nClasses; i++ {
		c, err := d.readClass(strs, types, methods)
		if err != nil {
			return nil, fmt.Errorf("class %d: %w", i, err)
		}
		f.Classes = append(f.Classes, c)
	}
	if d.r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.r.Len())
	}
	return f, nil
}

func (d *reader) readStringPool() ([]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if poolTooLarge(n, d.r.Len()+1) {
		return nil, fmt.Errorf("%w: string pool size %d", ErrCorrupt, n)
	}
	pool := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		s, err := d.str(l)
		if err != nil {
			return nil, err
		}
		pool = append(pool, s)
	}
	return pool, nil
}

func (d *reader) readTypePool(strs []string) ([]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if poolTooLarge(n, d.r.Len()+1) {
		return nil, fmt.Errorf("%w: type pool size %d", ErrCorrupt, n)
	}
	pool := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		si, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if si >= uint64(len(strs)) {
			return nil, fmt.Errorf("%w: type %d references string %d of %d", ErrCorrupt, i, si, len(strs))
		}
		pool = append(pool, strs[si])
	}
	return pool, nil
}

func (d *reader) readMethodPool(strs, types []string) ([]MethodRef, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if poolTooLarge(n, d.r.Len()+1) {
		return nil, fmt.Errorf("%w: method pool size %d", ErrCorrupt, n)
	}
	pool := make([]MethodRef, 0, n)
	for i := uint64(0); i < n; i++ {
		ci, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		ni, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		si, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if ci >= uint64(len(types)) || ni >= uint64(len(strs)) || si >= uint64(len(strs)) {
			return nil, fmt.Errorf("%w: method %d has out-of-range indices", ErrCorrupt, i)
		}
		pool = append(pool, MethodRef{Class: types[ci], Name: strs[ni], Signature: strs[si]})
	}
	return pool, nil
}

func (d *reader) readClass(strs, types []string, methods []MethodRef) (Class, error) {
	var c Class
	nameIdx, err := d.uvarint()
	if err != nil {
		return c, err
	}
	if nameIdx >= uint64(len(types)) {
		return c, fmt.Errorf("%w: class name index %d", ErrCorrupt, nameIdx)
	}
	c.Name = types[nameIdx]

	superIdx, err := d.uvarint()
	if err != nil {
		return c, err
	}
	if superIdx > 0 {
		if superIdx-1 >= uint64(len(types)) {
			return c, fmt.Errorf("%w: superclass index %d", ErrCorrupt, superIdx)
		}
		c.SuperName = types[superIdx-1]
	}

	nIfaces, err := d.uvarint()
	if err != nil {
		return c, err
	}
	if poolTooLarge(nIfaces, d.r.Len()+1) {
		return c, fmt.Errorf("%w: interface count %d", ErrCorrupt, nIfaces)
	}
	for i := uint64(0); i < nIfaces; i++ {
		ti, err := d.uvarint()
		if err != nil {
			return c, err
		}
		if ti >= uint64(len(types)) {
			return c, fmt.Errorf("%w: interface index %d", ErrCorrupt, ti)
		}
		c.Interfaces = append(c.Interfaces, types[ti])
	}

	srcIdx, err := d.uvarint()
	if err != nil {
		return c, err
	}
	if srcIdx > 0 {
		if srcIdx-1 >= uint64(len(strs)) {
			return c, fmt.Errorf("%w: source-file index %d", ErrCorrupt, srcIdx)
		}
		c.SourceFile = strs[srcIdx-1]
	}

	flags, err := d.uvarint()
	if err != nil {
		return c, err
	}
	c.Flags = AccessFlag(flags)

	nFields, err := d.uvarint()
	if err != nil {
		return c, err
	}
	if poolTooLarge(nFields, d.r.Len()+1) {
		return c, fmt.Errorf("%w: field count %d", ErrCorrupt, nFields)
	}
	for i := uint64(0); i < nFields; i++ {
		ni, err := d.uvarint()
		if err != nil {
			return c, err
		}
		ti, err := d.uvarint()
		if err != nil {
			return c, err
		}
		fl, err := d.uvarint()
		if err != nil {
			return c, err
		}
		if ni >= uint64(len(strs)) || ti >= uint64(len(types)) {
			return c, fmt.Errorf("%w: field %d out-of-range indices", ErrCorrupt, i)
		}
		c.Fields = append(c.Fields, Field{Name: strs[ni], Type: types[ti], Flags: AccessFlag(fl)})
	}

	nMethods, err := d.uvarint()
	if err != nil {
		return c, err
	}
	if poolTooLarge(nMethods, d.r.Len()+1) {
		return c, fmt.Errorf("%w: method count %d", ErrCorrupt, nMethods)
	}
	for i := uint64(0); i < nMethods; i++ {
		m, err := d.readMethod(strs, types, methods)
		if err != nil {
			return c, fmt.Errorf("method %d: %w", i, err)
		}
		c.Methods = append(c.Methods, m)
	}
	return c, nil
}

func (d *reader) readMethod(strs, types []string, methods []MethodRef) (Method, error) {
	var m Method
	ni, err := d.uvarint()
	if err != nil {
		return m, err
	}
	si, err := d.uvarint()
	if err != nil {
		return m, err
	}
	fl, err := d.uvarint()
	if err != nil {
		return m, err
	}
	if ni >= uint64(len(strs)) || si >= uint64(len(strs)) {
		return m, fmt.Errorf("%w: method name/sig index out of range", ErrCorrupt)
	}
	m.Name, m.Signature, m.Flags = strs[ni], strs[si], AccessFlag(fl)

	nInsns, err := d.uvarint()
	if err != nil {
		return m, err
	}
	if poolTooLarge(nInsns, d.r.Len()+1) {
		return m, fmt.Errorf("%w: instruction count %d", ErrCorrupt, nInsns)
	}
	m.Code = make([]Instruction, 0, nInsns)
	for i := uint64(0); i < nInsns; i++ {
		ins, err := d.readInsn(strs, types, methods)
		if err != nil {
			return m, fmt.Errorf("insn %d: %w", i, err)
		}
		m.Code = append(m.Code, ins)
	}
	return m, nil
}

func (d *reader) readInsn(strs, types []string, methods []MethodRef) (Instruction, error) {
	var ins Instruction
	opByte, err := d.r.ReadByte()
	if err != nil {
		return ins, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	ins.Op = Opcode(opByte)
	if ins.Op >= opMax {
		return ins, fmt.Errorf("%w: unknown opcode %d", ErrCorrupt, opByte)
	}
	switch ins.Op {
	case OpConstString:
		si, err := d.uvarint()
		if err != nil {
			return ins, err
		}
		if si >= uint64(len(strs)) {
			return ins, fmt.Errorf("%w: const-string index %d", ErrCorrupt, si)
		}
		ins.Str = strs[si]
	case OpConstInt, OpIfZ, OpGoto:
		v, err := d.varint()
		if err != nil {
			return ins, err
		}
		ins.Int = v
	case OpNewInstance:
		ti, err := d.uvarint()
		if err != nil {
			return ins, err
		}
		if ti >= uint64(len(types)) {
			return ins, fmt.Errorf("%w: new-instance index %d", ErrCorrupt, ti)
		}
		ins.Type = types[ti]
	case OpInvokeVirtual, OpInvokeStatic, OpInvokeDirect, OpInvokeInterface:
		mi, err := d.uvarint()
		if err != nil {
			return ins, err
		}
		if mi >= uint64(len(methods)) {
			return ins, fmt.Errorf("%w: invoke index %d", ErrCorrupt, mi)
		}
		ins.Target = methods[mi]
	}
	return ins, nil
}
