package dalvik

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	b := NewBuilder()
	b.Class("com.example.app.MainActivity", "android.app.Activity", AccPublic).
		Source("MainActivity.java").
		VoidMethod("onCreate",
			NewInstance("android.webkit.WebView"),
			InvokeDirect("android.webkit.WebView", "<init>", "(Context)void"),
			ConstString("https://example.com"),
			InvokeVirtual("android.webkit.WebView", "loadUrl", "(String)void"),
		).
		VoidMethod("onResume",
			InvokeStatic("com.example.app.Analytics", "ping", "()void"),
		)
	b.Class("com.example.app.Analytics", "java.lang.Object", AccPublic|AccFinal).
		Field("endpoint", "java.lang.String", AccPrivate|AccStatic).
		Method("ping", "()void", AccPublic|AccStatic,
			ConstInt(42),
			Return(),
		)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile(t)
	data, err := Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Classes) != len(f.Classes) {
		t.Fatalf("class count = %d, want %d", len(got.Classes), len(f.Classes))
	}
	// Encode sorts classes by name; compare by lookup.
	for i := range f.Classes {
		want := &f.Classes[i]
		have := got.ClassByName(want.Name)
		if have == nil {
			t.Fatalf("class %q missing after round trip", want.Name)
		}
		if have.SuperName != want.SuperName {
			t.Errorf("%s super = %q, want %q", want.Name, have.SuperName, want.SuperName)
		}
		if have.SourceFile != want.SourceFile {
			t.Errorf("%s source = %q, want %q", want.Name, have.SourceFile, want.SourceFile)
		}
		if len(have.Methods) != len(want.Methods) {
			t.Fatalf("%s method count = %d, want %d", want.Name, len(have.Methods), len(want.Methods))
		}
		for j := range want.Methods {
			if !reflect.DeepEqual(have.Methods[j], want.Methods[j]) {
				t.Errorf("%s method %d = %+v, want %+v", want.Name, j, have.Methods[j], want.Methods[j])
			}
		}
		if !reflect.DeepEqual(have.Fields, want.Fields) {
			t.Errorf("%s fields = %+v, want %+v", want.Name, have.Fields, want.Fields)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := sampleFile(t)
	a, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse class order; output must be identical because Encode sorts.
	rev := &File{Version: f.Version}
	for i := len(f.Classes) - 1; i >= 0; i-- {
		rev.Classes = append(rev.Classes, f.Classes[i])
	}
	b, err := Encode(rev)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("Encode output depends on class declaration order")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data, _ := Encode(sampleFile(t))
	data[0] = 'X'
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	data, _ := Encode(sampleFile(t))
	data[4] = 0xFF
	if _, err := Decode(data); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsChecksumMismatch(t *testing.T) {
	data, _ := Encode(sampleFile(t))
	data[len(data)-1] ^= 0x01
	if _, err := Decode(data); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestDecodeRejectsShortFile(t *testing.T) {
	for _, n := range []int{0, 1, 4, 9} {
		if _, err := Decode(make([]byte, n)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("Decode(%d bytes) err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data, _ := Encode(sampleFile(t))
	// Truncating anywhere in the body must yield a checksum error (the sum
	// covers the body), never a panic.
	for cut := 10; cut < len(data); cut += 7 {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes unexpectedly succeeded", cut, len(data))
		}
	}
}

// TestDecodeNeverPanics fuzzes the decoder with random mutations of a valid
// file; decoding must fail gracefully or succeed, never panic. Mutated
// bodies are re-checksummed so the fuzz reaches past the integrity check.
func TestDecodeNeverPanics(t *testing.T) {
	valid, _ := Encode(sampleFile(t))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		data := make([]byte, len(valid))
		copy(data, valid)
		for j := 0; j < 1+rng.Intn(5); j++ {
			data[10+rng.Intn(len(data)-10)] = byte(rng.Intn(256))
		}
		rechecksum(data)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on mutation %d: %v", i, r)
				}
			}()
			_, _ = Decode(data)
		}()
	}
}

func rechecksum(data []byte) {
	// Mirror of the writer's layout: checksum at [6:10] over data[10:].
	sum := adler(data[10:])
	data[6] = byte(sum)
	data[7] = byte(sum >> 8)
	data[8] = byte(sum >> 16)
	data[9] = byte(sum >> 24)
}

func adler(b []byte) uint32 {
	const mod = 65521
	a, s := uint32(1), uint32(0)
	for _, c := range b {
		a = (a + uint32(c)) % mod
		s = (s + a) % mod
	}
	return s<<16 | a
}

func TestValidateDuplicateClass(t *testing.T) {
	f := &File{Classes: []Class{{Name: "a.B"}, {Name: "a.B"}}}
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted duplicate class names")
	}
}

func TestValidateEmptyInvokeTarget(t *testing.T) {
	f := &File{Classes: []Class{{
		Name: "a.B",
		Methods: []Method{{
			Name:      "m",
			Signature: "()void",
			Code:      []Instruction{{Op: OpInvokeVirtual}},
		}},
	}}}
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted invoke with empty target")
	}
}

func TestPackageOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"com.example.app.MainActivity", "com.example.app"},
		{"Main", ""},
		{"a.B", "a"},
		{"", ""},
	}
	for _, c := range cases {
		if got := PackageOf(c.in); got != c.want {
			t.Errorf("PackageOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBuilderAppendsReturn(t *testing.T) {
	f := NewBuilder().
		Class("a.B", "java.lang.Object", AccPublic).
		VoidMethod("m", ConstInt(1)).
		MustBuild()
	code := f.Classes[0].Methods[0].Code
	if code[len(code)-1].Op != OpReturnVoid {
		t.Error("VoidMethod did not append return-void")
	}
	// Already-terminated bodies must not get a second return.
	f2 := NewBuilder().
		Class("a.B", "java.lang.Object", AccPublic).
		VoidMethod("m", ConstInt(1), Return()).
		MustBuild()
	if n := len(f2.Classes[0].Methods[0].Code); n != 2 {
		t.Errorf("VoidMethod appended redundant return (len=%d)", n)
	}
}

func TestDisassembleMentionsEveryMethod(t *testing.T) {
	f := sampleFile(t)
	out := Disassemble(f)
	for _, want := range []string{
		".class public com.example.app.MainActivity",
		".super android.app.Activity",
		".method public onCreate()void",
		`const-string "https://example.com"`,
		"invoke-virtual android.webkit.WebView.loadUrl(String)void",
		".field private static endpoint java.lang.String",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q\n%s", want, out)
		}
	}
}

// quickFile builds a structurally valid random File for property testing.
func quickFile(rng *rand.Rand) *File {
	names := []string{"a.A", "a.B", "b.C", "com.x.Y", "com.x.Z"}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	n := 1 + rng.Intn(len(names))
	f := &File{Version: FormatVersion}
	for i := 0; i < n; i++ {
		c := Class{Name: names[i], SuperName: "java.lang.Object", Flags: AccPublic}
		for m := 0; m < rng.Intn(4); m++ {
			meth := Method{Name: "m" + string(rune('a'+m)), Signature: "()void", Flags: AccPublic}
			for k := 0; k < rng.Intn(6); k++ {
				switch rng.Intn(5) {
				case 0:
					meth.Code = append(meth.Code, ConstString(strings.Repeat("x", rng.Intn(9))))
				case 1:
					meth.Code = append(meth.Code, ConstInt(rng.Int63n(1e6)-5e5))
				case 2:
					meth.Code = append(meth.Code, NewInstance("t.T"))
				case 3:
					meth.Code = append(meth.Code, InvokeVirtual("t.T", "f", "()void"))
				default:
					meth.Code = append(meth.Code, Instruction{Op: OpIfZ, Int: int64(rng.Intn(10))})
				}
			}
			meth.Code = append(meth.Code, Return())
			c.Methods = append(c.Methods, meth)
		}
		f.Classes = append(f.Classes, c)
	}
	return f
}

// Property: Decode(Encode(f)) preserves every class definition.
func TestQuickRoundTripPreservesClasses(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := quickFile(rng)
		data, err := Encode(f)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		if len(got.Classes) != len(f.Classes) {
			return false
		}
		for i := range f.Classes {
			have := got.ClassByName(f.Classes[i].Name)
			if have == nil || !reflect.DeepEqual(have.Methods, f.Classes[i].Methods) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: encoding is idempotent — re-encoding a decoded file reproduces
// the original bytes.
func TestQuickEncodeIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := quickFile(rng)
		a, err := Encode(f)
		if err != nil {
			return false
		}
		dec, err := Decode(a)
		if err != nil {
			return false
		}
		b, err := Encode(dec)
		if err != nil {
			return false
		}
		return string(a) == string(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
