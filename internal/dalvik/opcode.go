package dalvik

import "fmt"

// Opcode enumerates the instruction set of the sdex format. The set is a
// deliberately small projection of Dalvik: enough to express object
// construction, method invocation, string/int constants and simple control
// flow, which is all the static analyses in this repository consume.
type Opcode uint8

// Instruction opcodes.
const (
	OpNop             Opcode = iota
	OpConstString            // push a string-pool constant
	OpConstInt               // push an integer constant
	OpNewInstance            // allocate an instance of a type
	OpInvokeVirtual          // virtual dispatch on a MethodRef
	OpInvokeStatic           // static call on a MethodRef
	OpInvokeDirect           // constructor / private call on a MethodRef
	OpInvokeInterface        // interface dispatch on a MethodRef
	OpMoveResult             // capture the result of the previous invoke
	OpIfZ                    // conditional branch (guards a region of code)
	OpGoto                   // unconditional branch
	OpReturnVoid             // return without a value
	OpReturnValue            // return the top value
	OpThrow                  // raise an exception
	opMax                    // sentinel, not encodable
)

var opcodeNames = [...]string{
	OpNop:             "nop",
	OpConstString:     "const-string",
	OpConstInt:        "const-int",
	OpNewInstance:     "new-instance",
	OpInvokeVirtual:   "invoke-virtual",
	OpInvokeStatic:    "invoke-static",
	OpInvokeDirect:    "invoke-direct",
	OpInvokeInterface: "invoke-interface",
	OpMoveResult:      "move-result",
	OpIfZ:             "if-z",
	OpGoto:            "goto",
	OpReturnVoid:      "return-void",
	OpReturnValue:     "return-value",
	OpThrow:           "throw",
}

// String returns the mnemonic for the opcode.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsInvoke reports whether the opcode is one of the four invoke forms.
func (o Opcode) IsInvoke() bool {
	switch o {
	case OpInvokeVirtual, OpInvokeStatic, OpInvokeDirect, OpInvokeInterface:
		return true
	}
	return false
}

// Instruction is a single decoded sdex instruction. Exactly which operand
// fields are meaningful depends on the opcode:
//
//	OpConstString           Str
//	OpConstInt              Int
//	OpNewInstance           Type
//	OpInvoke*               Target
//	OpIfZ, OpGoto           Int (relative branch offset in instructions)
//
// Keeping operands symbolic (strings and MethodRefs rather than pool
// indices) makes the in-memory form independent of any particular encoding;
// the writer interns them into pools.
type Instruction struct {
	Op     Opcode
	Str    string
	Int    int64
	Type   string
	Target MethodRef
}

func (ins Instruction) validate() error {
	switch ins.Op {
	case OpNop, OpMoveResult, OpReturnVoid, OpReturnValue, OpThrow:
		return nil
	case OpConstString, OpConstInt, OpIfZ, OpGoto:
		return nil
	case OpNewInstance:
		if ins.Type == "" {
			return fmt.Errorf("new-instance with empty type")
		}
		return nil
	case OpInvokeVirtual, OpInvokeStatic, OpInvokeDirect, OpInvokeInterface:
		if ins.Target.Class == "" || ins.Target.Name == "" {
			return fmt.Errorf("%s with incomplete target %q", ins.Op, ins.Target)
		}
		return nil
	default:
		return fmt.Errorf("unknown opcode %d", ins.Op)
	}
}

// String renders the instruction in disassembly form.
func (ins Instruction) String() string {
	switch ins.Op {
	case OpConstString:
		return fmt.Sprintf("%s %q", ins.Op, ins.Str)
	case OpConstInt, OpIfZ, OpGoto:
		return fmt.Sprintf("%s %d", ins.Op, ins.Int)
	case OpNewInstance:
		return fmt.Sprintf("%s %s", ins.Op, ins.Type)
	case OpInvokeVirtual, OpInvokeStatic, OpInvokeDirect, OpInvokeInterface:
		return fmt.Sprintf("%s %s", ins.Op, ins.Target)
	default:
		return ins.Op.String()
	}
}

// Convenience constructors keep corpus-generation code terse.

// ConstString builds an OpConstString instruction.
func ConstString(s string) Instruction { return Instruction{Op: OpConstString, Str: s} }

// ConstInt builds an OpConstInt instruction.
func ConstInt(v int64) Instruction { return Instruction{Op: OpConstInt, Int: v} }

// NewInstance builds an OpNewInstance instruction.
func NewInstance(typ string) Instruction { return Instruction{Op: OpNewInstance, Type: typ} }

// InvokeVirtual builds an OpInvokeVirtual instruction.
func InvokeVirtual(class, name, sig string) Instruction {
	return Instruction{Op: OpInvokeVirtual, Target: MethodRef{Class: class, Name: name, Signature: sig}}
}

// InvokeStatic builds an OpInvokeStatic instruction.
func InvokeStatic(class, name, sig string) Instruction {
	return Instruction{Op: OpInvokeStatic, Target: MethodRef{Class: class, Name: name, Signature: sig}}
}

// InvokeDirect builds an OpInvokeDirect instruction.
func InvokeDirect(class, name, sig string) Instruction {
	return Instruction{Op: OpInvokeDirect, Target: MethodRef{Class: class, Name: name, Signature: sig}}
}

// InvokeInterface builds an OpInvokeInterface instruction.
func InvokeInterface(class, name, sig string) Instruction {
	return Instruction{Op: OpInvokeInterface, Target: MethodRef{Class: class, Name: name, Signature: sig}}
}

// Return builds an OpReturnVoid instruction.
func Return() Instruction { return Instruction{Op: OpReturnVoid} }
