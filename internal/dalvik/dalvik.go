// Package dalvik implements "sdex", a simplified Dalvik-executable-like
// bytecode container used as the stand-in for real DEX files in this
// reproduction.
//
// A File holds a string pool, a type pool, a pool of method references and a
// list of class definitions. Each class definition carries its superclass,
// implemented interfaces and method bodies encoded as a compact instruction
// stream. The format is binary (see writer.go / reader.go), self-describing
// and checksummed, mirroring the role classes.dex plays inside an APK.
//
// The package provides four views of the same data:
//
//   - a Builder for synthesising classes programmatically (used by the
//     corpus generator),
//   - Encode/Decode for the binary wire format (used by the APK packer and
//     the analysis pipeline),
//   - Disassemble for a human-readable listing, and
//   - typed accessors (Classes, MethodRefs, …) that the call-graph builder
//     consumes.
package dalvik

import "fmt"

// AccessFlag describes class, method and field visibility and modifiers.
// The values intentionally mirror a subset of the real DEX access flags.
type AccessFlag uint32

// Access flags understood by the container.
const (
	AccPublic      AccessFlag = 0x0001
	AccPrivate     AccessFlag = 0x0002
	AccProtected   AccessFlag = 0x0004
	AccStatic      AccessFlag = 0x0008
	AccFinal       AccessFlag = 0x0010
	AccInterface   AccessFlag = 0x0200
	AccAbstract    AccessFlag = 0x0400
	AccSynthetic   AccessFlag = 0x1000
	AccConstructor AccessFlag = 0x10000
)

// MethodRef identifies a method on a type, as used by invoke instructions.
// Class is a fully-qualified dotted name (e.g. "android.webkit.WebView"),
// Name the method name, and Signature a compact descriptor such as
// "(String)void".
type MethodRef struct {
	Class     string
	Name      string
	Signature string
}

// String returns the conventional Class.Name(Signature) rendering.
func (r MethodRef) String() string {
	return r.Class + "." + r.Name + r.Signature
}

// Field describes a class field.
type Field struct {
	Name  string
	Type  string
	Flags AccessFlag
}

// Method is a method definition with its bytecode body. Abstract and native
// methods have an empty Code slice.
type Method struct {
	Name      string
	Signature string
	Flags     AccessFlag
	Code      []Instruction
}

// Ref returns the MethodRef that invoke instructions elsewhere would use to
// target this method on class className.
func (m *Method) Ref(className string) MethodRef {
	return MethodRef{Class: className, Name: m.Name, Signature: m.Signature}
}

// Class is a class definition.
type Class struct {
	Name       string // fully-qualified dotted name
	SuperName  string // dotted name of the superclass; "" for java.lang.Object itself
	Interfaces []string
	SourceFile string
	Flags      AccessFlag
	Fields     []Field
	Methods    []Method
}

// Method returns the method with the given name and signature, or nil.
func (c *Class) Method(name, sig string) *Method {
	for i := range c.Methods {
		if c.Methods[i].Name == name && c.Methods[i].Signature == sig {
			return &c.Methods[i]
		}
	}
	return nil
}

// Package returns the Java package portion of the class name, or "" when the
// class is in the default package.
func (c *Class) Package() string {
	return PackageOf(c.Name)
}

// PackageOf returns the package prefix of a dotted class name.
func PackageOf(className string) string {
	for i := len(className) - 1; i >= 0; i-- {
		if className[i] == '.' {
			return className[:i]
		}
	}
	return ""
}

// File is a parsed or under-construction sdex container.
type File struct {
	Version uint16
	Classes []Class
}

// ClassByName returns the class definition with the given dotted name, or
// nil when the file does not define it.
func (f *File) ClassByName(name string) *Class {
	for i := range f.Classes {
		if f.Classes[i].Name == name {
			return &f.Classes[i]
		}
	}
	return nil
}

// MethodCount returns the total number of method definitions in the file.
func (f *File) MethodCount() int {
	n := 0
	for i := range f.Classes {
		n += len(f.Classes[i].Methods)
	}
	return n
}

// Validate checks structural invariants that both the writer and consumers
// rely on: unique class names, non-empty names, and in-range instruction
// operands (operand pools are per-file and resolved at encode time, so here
// we validate the symbolic form).
func (f *File) Validate() error {
	seen := make(map[string]bool, len(f.Classes))
	for i := range f.Classes {
		c := &f.Classes[i]
		if c.Name == "" {
			return fmt.Errorf("dalvik: class %d has empty name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("dalvik: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		for j := range c.Methods {
			m := &c.Methods[j]
			if m.Name == "" {
				return fmt.Errorf("dalvik: class %q method %d has empty name", c.Name, j)
			}
			for k, ins := range m.Code {
				if err := ins.validate(); err != nil {
					return fmt.Errorf("dalvik: %s.%s insn %d: %w", c.Name, m.Name, k, err)
				}
			}
		}
	}
	return nil
}
