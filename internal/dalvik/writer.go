package dalvik

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/adler32"
	"math"
	"sort"
)

// Binary layout of an sdex file:
//
//	magic     [4]byte  "SDEX"
//	version   uint16   little-endian
//	checksum  uint32   adler32 of everything after the checksum field
//	strings   pool     (uvarint count, then length-prefixed UTF-8)
//	types     pool     (uvarint count, then string-pool indices)
//	methods   pool     (uvarint count, then class-type, name-string, sig-string indices)
//	classes   uvarint count, then per class:
//	            name-type, super-type(+1, 0=none), iface count + types,
//	            source-string(+1, 0=none), flags,
//	            field count + (name, type, flags),
//	            method count + (name, sig, flags, insn count + insns)
//
// All integers except the header are unsigned varints; signed operands use
// zig-zag encoding. The format favours compactness and a trivially
// streamable decoder over random access — the analysis pipeline always reads
// whole files.

const (
	magic = "SDEX"
	// FormatVersion is the current encoder output version.
	FormatVersion uint16 = 1
)

type pools struct {
	strings   []string
	stringIdx map[string]uint64
	types     []uint64 // indices into strings
	typeIdx   map[string]uint64
	methods   []encodedMethodRef
	methodIdx map[MethodRef]uint64
}

type encodedMethodRef struct {
	class, name, sig uint64 // class is a type index; name/sig are string indices
}

func newPools() *pools {
	return &pools{
		stringIdx: make(map[string]uint64),
		typeIdx:   make(map[string]uint64),
		methodIdx: make(map[MethodRef]uint64),
	}
}

func (p *pools) internString(s string) uint64 {
	if i, ok := p.stringIdx[s]; ok {
		return i
	}
	i := uint64(len(p.strings))
	p.strings = append(p.strings, s)
	p.stringIdx[s] = i
	return i
}

func (p *pools) internType(t string) uint64 {
	if i, ok := p.typeIdx[t]; ok {
		return i
	}
	si := p.internString(t)
	i := uint64(len(p.types))
	p.types = append(p.types, si)
	p.typeIdx[t] = i
	return i
}

func (p *pools) internMethod(r MethodRef) uint64 {
	if i, ok := p.methodIdx[r]; ok {
		return i
	}
	m := encodedMethodRef{
		class: p.internType(r.Class),
		name:  p.internString(r.Name),
		sig:   p.internString(r.Signature),
	}
	i := uint64(len(p.methods))
	p.methods = append(p.methods, m)
	p.methodIdx[r] = i
	return i
}

// Encode serialises the file to the sdex binary format. The classes are
// emitted in name order so that encoding is deterministic regardless of
// construction order.
func Encode(f *File) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	classes := make([]Class, len(f.Classes))
	copy(classes, f.Classes)
	sort.Slice(classes, func(i, j int) bool { return classes[i].Name < classes[j].Name })

	p := newPools()
	var body bytes.Buffer

	// Two passes: the first interns every symbol so the pools are complete,
	// the second writes class bodies referencing them. Interning while
	// writing would also work, but pools-first keeps the layout conventional
	// (pools before the data that indexes into them).
	for i := range classes {
		internClass(p, &classes[i])
	}

	writeUvarint(&body, uint64(len(p.strings)))
	for _, s := range p.strings {
		writeUvarint(&body, uint64(len(s)))
		body.WriteString(s)
	}
	writeUvarint(&body, uint64(len(p.types)))
	for _, si := range p.types {
		writeUvarint(&body, si)
	}
	writeUvarint(&body, uint64(len(p.methods)))
	for _, m := range p.methods {
		writeUvarint(&body, m.class)
		writeUvarint(&body, m.name)
		writeUvarint(&body, m.sig)
	}

	writeUvarint(&body, uint64(len(classes)))
	for i := range classes {
		if err := encodeClass(&body, p, &classes[i]); err != nil {
			return nil, err
		}
	}

	var out bytes.Buffer
	out.Grow(body.Len() + 10)
	out.WriteString(magic)
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:2], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[2:6], adler32.Checksum(body.Bytes()))
	out.Write(hdr[:])
	out.Write(body.Bytes())
	return out.Bytes(), nil
}

func internClass(p *pools, c *Class) {
	p.internType(c.Name)
	if c.SuperName != "" {
		p.internType(c.SuperName)
	}
	for _, it := range c.Interfaces {
		p.internType(it)
	}
	if c.SourceFile != "" {
		p.internString(c.SourceFile)
	}
	for _, fl := range c.Fields {
		p.internString(fl.Name)
		p.internType(fl.Type)
	}
	for i := range c.Methods {
		m := &c.Methods[i]
		p.internString(m.Name)
		p.internString(m.Signature)
		for _, ins := range m.Code {
			switch ins.Op {
			case OpConstString:
				p.internString(ins.Str)
			case OpNewInstance:
				p.internType(ins.Type)
			case OpInvokeVirtual, OpInvokeStatic, OpInvokeDirect, OpInvokeInterface:
				p.internMethod(ins.Target)
			}
		}
	}
}

func encodeClass(w *bytes.Buffer, p *pools, c *Class) error {
	writeUvarint(w, p.typeIdx[c.Name])
	if c.SuperName == "" {
		writeUvarint(w, 0)
	} else {
		writeUvarint(w, p.typeIdx[c.SuperName]+1)
	}
	writeUvarint(w, uint64(len(c.Interfaces)))
	for _, it := range c.Interfaces {
		writeUvarint(w, p.typeIdx[it])
	}
	if c.SourceFile == "" {
		writeUvarint(w, 0)
	} else {
		writeUvarint(w, p.stringIdx[c.SourceFile]+1)
	}
	writeUvarint(w, uint64(c.Flags))

	writeUvarint(w, uint64(len(c.Fields)))
	for _, fl := range c.Fields {
		writeUvarint(w, p.stringIdx[fl.Name])
		writeUvarint(w, p.typeIdx[fl.Type])
		writeUvarint(w, uint64(fl.Flags))
	}

	writeUvarint(w, uint64(len(c.Methods)))
	for i := range c.Methods {
		m := &c.Methods[i]
		writeUvarint(w, p.stringIdx[m.Name])
		writeUvarint(w, p.stringIdx[m.Signature])
		writeUvarint(w, uint64(m.Flags))
		writeUvarint(w, uint64(len(m.Code)))
		for _, ins := range m.Code {
			if err := encodeInsn(w, p, ins); err != nil {
				return fmt.Errorf("%s.%s: %w", c.Name, m.Name, err)
			}
		}
	}
	return nil
}

func encodeInsn(w *bytes.Buffer, p *pools, ins Instruction) error {
	if ins.Op >= opMax {
		return fmt.Errorf("unencodable opcode %d", ins.Op)
	}
	w.WriteByte(byte(ins.Op))
	switch ins.Op {
	case OpConstString:
		writeUvarint(w, p.stringIdx[ins.Str])
	case OpConstInt, OpIfZ, OpGoto:
		writeVarint(w, ins.Int)
	case OpNewInstance:
		writeUvarint(w, p.typeIdx[ins.Type])
	case OpInvokeVirtual, OpInvokeStatic, OpInvokeDirect, OpInvokeInterface:
		writeUvarint(w, p.methodIdx[ins.Target])
	}
	return nil
}

func writeUvarint(w *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

// sanity limit shared with the reader: no single pool may claim more
// entries than could possibly fit in the remaining input.
func poolTooLarge(n uint64, remaining int) bool {
	return n > uint64(remaining) || n > math.MaxInt32
}
