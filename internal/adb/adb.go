// Package adb implements the device-control channel the crawler drives
// (§3.2.2: "a distinct crawler was crafted using Android Debug Bridge
// commands"). A Server exposes one device over TCP with a line-oriented
// command protocol; the Client issues the launch / input / log commands a
// real ADB-driven crawl would.
//
// Protocol: one command per line, space-separated; responses are a single
// line "OK[ payload]" or "ERR message". Payload lists are
// comma-separated.
//
//	launch <pkg>                      start the app
//	post <pkg> <url>                  submit a link as user content
//	click <pkg> <url>                 tap the link; payload "<mode> <context>"
//	input swipe <x1> <y1> <x2> <y2>   scroll (acknowledged no-op)
//	wait <ms>                         crawl pacing (acknowledged no-op)
//	netlog <context>                  hosts contacted by a browsing context
//	netlog-external <context> <host>  hosts beyond the first party
//	purge-netlog [context]            clear the device network log (or one
//	                                  browsing context's slice of it)
//	logcat-clear                      clear logcat
//	force-stop <pkg>                  kill the app's sessions
//	newaccount <pkg>                  replace the dummy account (rate limits)
package adb

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/device"
	"repro/internal/telemetry"
)

// Server exposes one device over TCP.
type Server struct {
	Device *device.Device
	// RateLimits caps clicks per app before the platform "restricts the
	// account" (the Facebook behaviour that limited the paper's crawl);
	// zero means unlimited.
	RateLimits map[string]int
	// WaitScale makes `wait <ms>` sleep for ms×WaitScale of real time
	// (0 keeps it an acknowledged no-op). The real crawl is dominated by
	// settle/pause waits; a small scale lets benchmarks measure how lane
	// parallelism overlaps them without sleeping for the paper's full 80
	// seconds per visit.
	WaitScale float64
	// Name labels this device in telemetry families (a farm assigns
	// "device0", "device1", …; empty means "device0").
	Name string
	// Telemetry, when non-nil, counts dispatched commands
	// (adb_commands_total{device,cmd}) and netlog purges
	// (netlog_purges_total{device,scope}). Set before Listen.
	Telemetry *telemetry.Hub

	mu       sync.Mutex
	ln       net.Listener
	sessions map[string]*device.Session
	clicks   map[string]int
	accounts map[string]int
}

// NewServer wraps a device.
func NewServer(dev *device.Device) *Server {
	return &Server{
		Device:   dev,
		sessions: make(map[string]*device.Session),
		clicks:   make(map[string]int),
		accounts: make(map[string]int),
	}
}

// Listen starts serving on addr (use "127.0.0.1:0") and returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("adb: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		resp := s.dispatch(line)
		w.WriteString(resp)
		w.WriteByte('\n')
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) device() string {
	if s.Name == "" {
		return "device0"
	}
	return s.Name
}

func (s *Server) dispatch(line string) string {
	fields := strings.Fields(line)
	cmd := fields[0]
	args := fields[1:]
	s.Telemetry.Counter("adb_commands_total", "device commands dispatched, by device and command",
		"device", s.device(), "cmd", cmd).Inc()
	switch cmd {
	case "launch":
		return s.cmdLaunch(args)
	case "post":
		return s.cmdPost(args)
	case "click":
		return s.cmdClick(args)
	case "input":
		return "OK"
	case "wait":
		if len(args) != 1 {
			return "ERR wait needs a duration"
		}
		ms, err := strconv.Atoi(args[0])
		if err != nil {
			return "ERR bad duration"
		}
		if s.WaitScale > 0 {
			time.Sleep(time.Duration(float64(ms) * s.WaitScale * float64(time.Millisecond)))
		}
		return "OK"
	case "netlog":
		if len(args) != 1 {
			return "ERR netlog needs a context"
		}
		return "OK " + strings.Join(s.Device.NetLog.Hosts(args[0]), ",")
	case "netlog-external":
		if len(args) != 2 {
			return "ERR netlog-external needs context and first-party host"
		}
		return "OK " + strings.Join(s.Device.NetLog.HostsNotUnder(args[0], args[1]), ",")
	case "purge-netlog":
		purges := func(scope string) *telemetry.Counter {
			return s.Telemetry.Counter("netlog_purges_total", "device network-log purges, by scope",
				"device", s.device(), "scope", scope)
		}
		switch len(args) {
		case 0:
			s.Device.NetLog.Purge()
			purges("all").Inc()
		case 1:
			s.Device.NetLog.PurgeContext(args[0])
			purges("context").Inc()
		default:
			return "ERR purge-netlog takes at most one context"
		}
		return "OK"
	case "logcat-clear":
		s.Device.Logcat.Clear()
		return "OK"
	case "force-stop":
		if len(args) != 1 {
			return "ERR force-stop needs a package"
		}
		s.mu.Lock()
		delete(s.sessions, args[0])
		s.mu.Unlock()
		return "OK"
	case "newaccount":
		if len(args) != 1 {
			return "ERR newaccount needs a package"
		}
		s.mu.Lock()
		s.clicks[args[0]] = 0
		s.accounts[args[0]]++
		n := s.accounts[args[0]]
		s.mu.Unlock()
		return fmt.Sprintf("OK account=%d", n)
	default:
		return "ERR unknown command " + cmd
	}
}

func (s *Server) cmdLaunch(args []string) string {
	if len(args) != 1 {
		return "ERR launch needs a package"
	}
	app, err := s.Device.App(args[0])
	if err != nil {
		return "ERR " + err.Error()
	}
	sess, err := app.Launch()
	if err != nil {
		return "ERR " + err.Error()
	}
	s.mu.Lock()
	s.sessions[args[0]] = sess
	s.mu.Unlock()
	return "OK"
}

func (s *Server) cmdPost(args []string) string {
	if len(args) != 2 {
		return "ERR post needs package and url"
	}
	s.mu.Lock()
	sess := s.sessions[args[0]]
	s.mu.Unlock()
	if sess == nil {
		return "ERR app not launched"
	}
	if err := sess.PostLink(args[1]); err != nil {
		return "ERR " + err.Error()
	}
	return "OK"
}

func (s *Server) cmdClick(args []string) string {
	if len(args) != 2 {
		return "ERR click needs package and url"
	}
	pkg := args[0]
	s.mu.Lock()
	sess := s.sessions[pkg]
	if sess == nil {
		s.mu.Unlock()
		return "ERR app not launched"
	}
	if limit := s.RateLimits[pkg]; limit > 0 && s.clicks[pkg] >= limit {
		s.mu.Unlock()
		return "ERR rate-limited: account restricted"
	}
	s.clicks[pkg]++
	s.mu.Unlock()

	res, err := sess.ClickLink(context.Background(), args[1])
	if err != nil {
		return "ERR " + err.Error()
	}
	mode := "browser"
	switch res.OpenedIn {
	case corpus.LinkWebView:
		mode = "webview"
	case corpus.LinkCustomTab:
		mode = "customtab"
	}
	return fmt.Sprintf("OK %s %s", mode, res.Context)
}

// Client is the crawl-side command issuer.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("adb: %w", err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Command sends one command and returns the payload. An "ERR" response
// becomes an error.
func (c *Client) Command(parts ...string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintln(c.conn, strings.Join(parts, " ")); err != nil {
		return "", fmt.Errorf("adb: %w", err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("adb: %w", err)
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "OK":
		return "", nil
	case strings.HasPrefix(line, "OK "):
		return line[3:], nil
	case strings.HasPrefix(line, "ERR "):
		return "", fmt.Errorf("adb: %s", line[4:])
	default:
		return "", fmt.Errorf("adb: malformed response %q", line)
	}
}

// List runs a command whose payload is a comma-separated list.
func (c *Client) List(parts ...string) ([]string, error) {
	payload, err := c.Command(parts...)
	if err != nil || payload == "" {
		return nil, err
	}
	return strings.Split(payload, ","), nil
}
