package adb

import (
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/device"
	"repro/internal/internet"
	"repro/internal/netlog"
)

func testFleet(t *testing.T, n int) *device.Fleet {
	t.Helper()
	fleet := device.NewFleet(internet.New(), n)
	if err := fleet.Install(&corpus.Spec{
		Package: "com.app.a", OnPlayStore: true,
		Dynamic: corpus.Dynamic{HasUserContent: true, LinkOpens: corpus.LinkBrowser},
	}); err != nil {
		t.Fatal(err)
	}
	return fleet
}

func TestFarmOneClientPerDevice(t *testing.T) {
	fleet := testFleet(t, 3)
	farm, err := StartFarm(fleet.Devices, FarmConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { farm.Close() })
	if farm.Size() != 3 || len(farm.Clients) != 3 {
		t.Fatalf("farm size = %d, clients = %d, want 3", farm.Size(), len(farm.Clients))
	}
	// Each client drives its own device: a launch on client 1 must not
	// create a session on device 0's server.
	if _, err := farm.Clients[1].Command("launch", "com.app.a"); err != nil {
		t.Fatal(err)
	}
	if _, err := farm.Clients[0].Command("post", "com.app.a", "https://x/"); err == nil {
		t.Error("post on device 0 succeeded without a launch there")
	}
}

func TestFarmLaneClientsPinning(t *testing.T) {
	fleet := testFleet(t, 2)
	farm, err := StartFarm(fleet.Devices, FarmConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { farm.Close() })
	lanes, err := farm.LaneClients(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lanes) != 5 {
		t.Fatalf("lanes = %d, want 5", len(lanes))
	}
	// Lane 0 and lane 2 share device 0: a session opened over lane 0's
	// connection is visible to lane 2 (same server), but not to lane 1
	// (device 1).
	if _, err := lanes[0].Command("launch", "com.app.a"); err != nil {
		t.Fatal(err)
	}
	if _, err := lanes[2].Command("post", "com.app.a", "https://x/"); err != nil {
		t.Errorf("lane 2 does not share device 0: %v", err)
	}
	if _, err := lanes[1].Command("post", "com.app.a", "https://x/"); err == nil {
		t.Error("lane 1 unexpectedly shares device 0's sessions")
	}
}

func TestWaitScaleSleepsScaledTime(t *testing.T) {
	dev := device.New(internet.New())
	srv := NewServer(dev)
	srv.WaitScale = 0.001 // 100000 ms -> 100 ms
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	start := time.Now()
	if _, err := client.Command("wait", "100000"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("wait returned after %v, want >= ~100ms", elapsed)
	}
}

func TestPurgeNetlogContext(t *testing.T) {
	client, dev := testServer(t)
	dev.NetLog.Record(netlog.Event{Context: "wv-a-1", URL: "https://one.example/"})
	dev.NetLog.Record(netlog.Event{Context: "wv-b-1", URL: "https://two.example/"})

	if _, err := client.Command("purge-netlog", "wv-a-1"); err != nil {
		t.Fatal(err)
	}
	if got := dev.NetLog.Hosts("wv-a-1"); len(got) != 0 {
		t.Errorf("context wv-a-1 still has hosts %v after purge", got)
	}
	if got := dev.NetLog.Hosts("wv-b-1"); len(got) != 1 {
		t.Errorf("context wv-b-1 lost its events: hosts = %v", got)
	}

	if _, err := client.Command("purge-netlog", "a", "b"); err == nil {
		t.Error("purge-netlog with two args accepted")
	}
	if _, err := client.Command("purge-netlog"); err != nil {
		t.Fatal(err)
	}
	if dev.NetLog.Len() != 0 {
		t.Error("bare purge-netlog did not clear the device log")
	}
}
