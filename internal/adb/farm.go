package adb

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/telemetry"
)

// Farm exposes a fleet of devices over ADB: one Server and one connected
// Client per device. The crawl scheduler pins each app lane to one client,
// so visits on different devices proceed fully independently while lanes
// sharing a device interleave over separate connections.
type Farm struct {
	Servers []*Server
	Clients []*Client

	// extra holds per-lane connections handed out by LaneClients, closed
	// with the farm.
	extra []*Client
}

// FarmConfig parameterises every server in a farm.
type FarmConfig struct {
	// RateLimits is applied to each server (per-device click budgets, as
	// the platform enforces them per account).
	RateLimits map[string]int
	// WaitScale is applied to each server (see Server.WaitScale).
	WaitScale float64
	// Telemetry, when non-nil, is installed on every server; each device is
	// named "device<i>" in the emitted families.
	Telemetry *telemetry.Hub
}

// StartFarm starts one server per device on loopback and dials a client to
// each. On error, everything already started is torn down.
func StartFarm(devs []*device.Device, cfg FarmConfig) (*Farm, error) {
	f := &Farm{}
	for i, dev := range devs {
		srv := NewServer(dev)
		srv.RateLimits = cfg.RateLimits
		srv.WaitScale = cfg.WaitScale
		srv.Name = fmt.Sprintf("device%d", i)
		srv.Telemetry = cfg.Telemetry
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("adb: farm device %d: %w", i, err)
		}
		f.Servers = append(f.Servers, srv)
		client, err := Dial(addr)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("adb: farm device %d: %w", i, err)
		}
		f.Clients = append(f.Clients, client)
	}
	return f, nil
}

// DialLane returns an extra connection to the i-th device (wrapping
// around). Lanes each get their own connection even when they share a
// device, so one lane's in-flight command never blocks another's.
func (f *Farm) DialLane(i int) (*Client, error) {
	srv := f.Servers[i%len(f.Servers)]
	srv.mu.Lock()
	ln := srv.ln
	srv.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("adb: farm server %d not listening", i%len(f.Servers))
	}
	return Dial(ln.Addr().String())
}

// LaneClients returns n dedicated connections, lane i pinned to device
// i mod Size. A client's command mutex spans the whole request/response
// round trip (including server-side waits), so lanes sharing one client
// would serialize their visits; dedicated connections let visits on the
// same device overlap. The farm owns the connections and closes them.
func (f *Farm) LaneClients(n int) ([]*Client, error) {
	out := make([]*Client, n)
	for i := range out {
		c, err := f.DialLane(i)
		if err != nil {
			return nil, err
		}
		f.extra = append(f.extra, c)
		out[i] = c
	}
	return out, nil
}

// Size reports the number of devices in the farm.
func (f *Farm) Size() int { return len(f.Servers) }

// Close closes every client and server.
func (f *Farm) Close() error {
	var first error
	for _, c := range append(f.Clients, f.extra...) {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range f.Servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
