package adb

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/device"
	"repro/internal/internet"
)

func testServer(t *testing.T) (*Client, *device.Device) {
	t.Helper()
	dev := device.New(internet.New())
	if _, err := dev.Install(&corpus.Spec{
		Package: "com.app.a", OnPlayStore: true,
		Dynamic: corpus.Dynamic{HasUserContent: true, LinkOpens: corpus.LinkBrowser},
	}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(dev)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, dev
}

func TestBasicCommands(t *testing.T) {
	client, _ := testServer(t)
	if _, err := client.Command("launch", "com.app.a"); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if _, err := client.Command("post", "com.app.a", "https://example.com/"); err != nil {
		t.Fatalf("post: %v", err)
	}
	payload, err := client.Command("click", "com.app.a", "https://example.com/")
	if err != nil {
		t.Fatalf("click: %v", err)
	}
	if !strings.HasPrefix(payload, "browser") {
		t.Errorf("payload = %q", payload)
	}
	for _, cmd := range [][]string{
		{"input", "swipe", "1", "2", "3", "4"},
		{"wait", "100"},
		{"purge-netlog"},
		{"logcat-clear"},
		{"force-stop", "com.app.a"},
	} {
		if _, err := client.Command(cmd...); err != nil {
			t.Errorf("%v: %v", cmd, err)
		}
	}
}

func TestErrorResponses(t *testing.T) {
	client, _ := testServer(t)
	cases := [][]string{
		{"launch"},
		{"launch", "com.not.there"},
		{"post", "com.app.a", "https://x/"}, // not launched
		{"click", "com.app.a"},
		{"nonsense"},
		{"wait", "abc"},
	}
	for _, c := range cases {
		if _, err := client.Command(c...); err == nil {
			t.Errorf("command %v accepted", c)
		}
	}
}

func TestRateLimitAndNewAccount(t *testing.T) {
	dev := device.New(internet.New())
	_, _ = dev.Install(&corpus.Spec{
		Package: "com.fb", OnPlayStore: true,
		Dynamic: corpus.Dynamic{HasUserContent: true, LinkOpens: corpus.LinkBrowser},
	})
	srv := NewServer(dev)
	srv.RateLimits = map[string]int{"com.fb": 2}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Command("launch", "com.fb"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := client.Command("post", "com.fb", "https://example.com/"); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Command("click", "com.fb", "https://example.com/"); err != nil {
			t.Fatalf("click %d: %v", i, err)
		}
	}
	_, _ = client.Command("post", "com.fb", "https://example.com/")
	if _, err := client.Command("click", "com.fb", "https://example.com/"); err == nil ||
		!strings.Contains(err.Error(), "rate-limited") {
		t.Errorf("third click err = %v, want rate-limited", err)
	}
	payload, err := client.Command("newaccount", "com.fb")
	if err != nil || !strings.HasPrefix(payload, "account=") {
		t.Fatalf("newaccount = %q, %v", payload, err)
	}
	if _, err := client.Command("click", "com.fb", "https://example.com/"); err != nil {
		t.Errorf("click after account reset: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	client1, dev := testServer(t)
	_ = client1
	// Second connection to the same server.
	srv := NewServer(dev)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if _, err := c.Command("wait", "1"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestListCommand(t *testing.T) {
	client, dev := testServer(t)
	if _, err := client.Command("launch", "com.app.a"); err != nil {
		t.Fatal(err)
	}
	_, _ = client.Command("post", "com.app.a", "https://example.com/")
	payload, err := client.Command("click", "com.app.a", "https://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	ctx := strings.Fields(payload)[1]
	hosts, err := client.List("netlog", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) == 0 {
		t.Error("no hosts")
	}
	_ = dev
}
