// Package frida plays the role of the Frida dynamic-instrumentation tool
// in the paper's measurement setup (§3.2.2): it attaches to a WebView at
// run time and overrides all of its API methods so that every call — and
// the arguments passed — is recorded for later analysis of App-WebView
// interactions.
package frida

import (
	"strings"
	"sync"

	"repro/internal/webview"
)

// Record is one intercepted WebView API call.
type Record struct {
	Method string
	Args   []string
}

// Session is an active instrumentation session on one WebView.
type Session struct {
	mu      sync.Mutex
	records []Record
}

// Attach hooks every method of the WebView; calls made after Attach are
// recorded with their arguments.
func Attach(wv *webview.WebView) *Session {
	s := &Session{}
	wv.AddHook(func(call webview.MethodCall) {
		s.mu.Lock()
		s.records = append(s.records, Record{Method: call.Method, Args: append([]string(nil), call.Args...)})
		s.mu.Unlock()
	})
	return s
}

// Calls returns every recorded call in order.
func (s *Session) Calls() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.records...)
}

// CallsTo returns the calls to one method.
func (s *Session) CallsTo(method string) []Record {
	var out []Record
	for _, r := range s.Calls() {
		if r.Method == method {
			out = append(out, r)
		}
	}
	return out
}

// Called reports whether a method was invoked at all.
func (s *Session) Called(method string) bool {
	return len(s.CallsTo(method)) > 0
}

// InjectedJS returns the JavaScript sources the app pushed into the page,
// via evaluateJavascript or javascript: loadUrl — the two injection
// channels the paper analyses (§3.2.2).
func (s *Session) InjectedJS() []string {
	var out []string
	for _, r := range s.Calls() {
		switch r.Method {
		case "evaluateJavascript":
			if len(r.Args) > 0 {
				out = append(out, r.Args[0])
			}
		case "loadUrl":
			if len(r.Args) > 0 && strings.HasPrefix(r.Args[0], "javascript:") {
				out = append(out, strings.TrimPrefix(r.Args[0], "javascript:"))
			}
		}
	}
	return out
}

// Bridges returns the JS-bridge names the app exposed via
// addJavascriptInterface.
func (s *Session) Bridges() []string {
	var out []string
	for _, r := range s.CallsTo("addJavascriptInterface") {
		if len(r.Args) > 0 {
			out = append(out, r.Args[0])
		}
	}
	return out
}
