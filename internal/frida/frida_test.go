package frida

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/jsvm"
	"repro/internal/webview"
)

func instrumentedWebView(t *testing.T) (*webview.WebView, *Session, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><head><title>T</title></head><body><p>x</p></body></html>`))
	}))
	t.Cleanup(srv.Close)
	wv := webview.New(webview.Config{ID: "wv", AppPackage: "com.app", Client: srv.Client()})
	wv.GetSettings().JavaScriptEnabled = true
	return wv, Attach(wv), srv
}

func TestRecordsCallsWithArguments(t *testing.T) {
	wv, sess, srv := instrumentedWebView(t)
	ctx := context.Background()
	if err := wv.LoadURL(ctx, srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	_ = wv.EvaluateJavascript("document.title", nil)
	wv.AddJavascriptInterface(jsvm.NewObject(), "fbpayIAWBridge")
	wv.RemoveJavascriptInterface("fbpayIAWBridge")

	if !sess.Called("loadUrl") || !sess.Called("evaluateJavascript") {
		t.Errorf("calls = %+v", sess.Calls())
	}
	loads := sess.CallsTo("loadUrl")
	if len(loads) != 1 || loads[0].Args[0] != srv.URL+"/" {
		t.Errorf("loadUrl records = %+v", loads)
	}
	if got := sess.Bridges(); !reflect.DeepEqual(got, []string{"fbpayIAWBridge"}) {
		t.Errorf("bridges = %v", got)
	}
}

func TestInjectedJSCapturesBothChannels(t *testing.T) {
	wv, sess, srv := instrumentedWebView(t)
	ctx := context.Background()
	if err := wv.LoadURL(ctx, srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	_ = wv.EvaluateJavascript("window.a = 1;", nil)
	_ = wv.LoadURL(ctx, "javascript:window.b = 2;")
	got := sess.InjectedJS()
	want := []string{"window.a = 1;", "window.b = 2;"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("InjectedJS = %v, want %v", got, want)
	}
}

func TestNoInjectionsMeansEmpty(t *testing.T) {
	wv, sess, srv := instrumentedWebView(t)
	if err := wv.LoadURL(context.Background(), srv.URL+"/"); err != nil {
		t.Fatal(err)
	}
	// Snapchat/Twitter/Reddit pattern: plain load, nothing injected.
	if got := sess.InjectedJS(); len(got) != 0 {
		t.Errorf("InjectedJS = %v, want none", got)
	}
	if got := sess.Bridges(); len(got) != 0 {
		t.Errorf("Bridges = %v, want none", got)
	}
}
