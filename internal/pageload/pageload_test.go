package pageload

import (
	"testing"
	"testing/quick"
)

func TestFigure7Ordering(t *testing.T) {
	m := Default()
	times := m.Compare(12)
	// Figure 7: CT fastest, then Chrome, then the external browser, and
	// the WebView slowest.
	if !(times[ModeCustomTab] < times[ModeChrome] &&
		times[ModeChrome] < times[ModeExternalBrowser] &&
		times[ModeExternalBrowser] < times[ModeWebView]) {
		t.Errorf("ordering wrong: %v", times)
	}
}

func TestCTTwiceAsFastAsWebView(t *testing.T) {
	m := Default()
	s := m.Speedup(ModeCustomTab, ModeWebView, 12)
	if s < 1.7 || s > 2.5 {
		t.Errorf("CT speedup over WebView = %.2f, want ≈2.0", s)
	}
}

func TestWarmupAndPreloadHelp(t *testing.T) {
	m := Default()
	cold := m.LoadTime(ModeCustomTab, 12, false, false)
	warm := m.LoadTime(ModeCustomTab, 12, true, false)
	preloaded := m.LoadTime(ModeCustomTab, 12, true, true)
	if !(preloaded < warm && warm < cold) {
		t.Errorf("cold=%v warm=%v preloaded=%v", cold, warm, preloaded)
	}
	// Warmup/preload are CT-only levers.
	if m.LoadTime(ModeWebView, 12, true, true) != m.LoadTime(ModeWebView, 12, false, false) {
		t.Error("warmup affected WebView timing")
	}
}

func TestLoadTimeMonotoneInRequests(t *testing.T) {
	m := Default()
	prop := func(a, b uint8) bool {
		ra, rb := int(a%64)+1, int(b%64)+1
		if ra > rb {
			ra, rb = rb, ra
		}
		for _, mode := range Modes {
			if m.LoadTime(mode, ra, false, false) > m.LoadTime(mode, rb, false, false) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroRequestsClamped(t *testing.T) {
	m := Default()
	if m.LoadTime(ModeWebView, 0, false, false) != m.LoadTime(ModeWebView, 1, false, false) {
		t.Error("zero requests not clamped to one")
	}
}

func TestModeStrings(t *testing.T) {
	for _, mode := range Modes {
		if mode.String() == "unknown" {
			t.Errorf("mode %d has no name", mode)
		}
	}
	if Mode(99).String() != "unknown" {
		t.Error("out-of-range mode named")
	}
}
