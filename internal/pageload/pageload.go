// Package pageload models page-load latency for the four rendering paths
// the paper's Figure 7 compares: a Custom Tab inside an app, Chrome, an
// external browser launched via intent, and a WebView inside an app. The
// model is deterministic (no sleeping): engine initialisation, activity
// transition and network phases compose per mode, with CT benefiting from
// pre-initialisation (warmup) and speculative loading (mayLaunchUrl) —
// which is why the paper reports CTs loading pages about twice as fast as
// WebViews.
package pageload

import "time"

// Mode is a rendering path.
type Mode int

// Rendering paths of Figure 7.
const (
	ModeCustomTab Mode = iota
	ModeChrome
	ModeExternalBrowser
	ModeWebView
)

func (m Mode) String() string {
	switch m {
	case ModeCustomTab:
		return "Custom Tab"
	case ModeChrome:
		return "Chrome"
	case ModeExternalBrowser:
		return "External Browser"
	case ModeWebView:
		return "WebView"
	default:
		return "unknown"
	}
}

// Modes lists all paths in Figure 7's order.
var Modes = []Mode{ModeCustomTab, ModeChrome, ModeExternalBrowser, ModeWebView}

// Model holds the latency parameters. All components are additive; the
// network phase is per-request with a concurrency discount.
type Model struct {
	// EngineInitWebView is the cold WebView engine start. WebViews cannot
	// pre-initialise, so every instance pays it.
	EngineInitWebView time.Duration
	// EngineInitBrowser is the browser process start when not warmed.
	EngineInitBrowser time.Duration
	// Transition is the activity/app switch cost per mode.
	TransitionCT      time.Duration
	TransitionChrome  time.Duration
	TransitionBrowser time.Duration
	TransitionWebView time.Duration
	// RequestRTT is the per-request network cost; ParallelFactor scales
	// the total for concurrent fetching.
	RequestRTT     time.Duration
	ParallelFactor float64
	// SpeculativeOverlap is the fraction of network time a preloaded CT
	// overlaps with the transition.
	SpeculativeOverlap float64
}

// Default returns the calibrated model (CT ≈ 2× faster than WebView at a
// typical 12-request page, matching the Figure 7 relationship).
func Default() Model {
	return Model{
		EngineInitWebView:  150 * time.Millisecond,
		EngineInitBrowser:  80 * time.Millisecond,
		TransitionCT:       30 * time.Millisecond,
		TransitionChrome:   40 * time.Millisecond,
		TransitionBrowser:  120 * time.Millisecond,
		TransitionWebView:  20 * time.Millisecond,
		RequestRTT:         25 * time.Millisecond,
		ParallelFactor:     0.6,
		SpeculativeOverlap: 0.25,
	}
}

// LoadTime computes the load latency for one visit. warmed marks a
// pre-initialised browser (CustomTabsClient.warmup); preloaded marks a
// mayLaunchUrl hint. Both only apply to CT.
func (m Model) LoadTime(mode Mode, requests int, warmed, preloaded bool) time.Duration {
	if requests < 1 {
		requests = 1
	}
	network := time.Duration(float64(m.RequestRTT) * float64(requests) * m.ParallelFactor)
	switch mode {
	case ModeCustomTab:
		t := m.TransitionCT
		if !warmed {
			t += m.EngineInitBrowser
		}
		if preloaded {
			network = time.Duration(float64(network) * (1 - m.SpeculativeOverlap))
		}
		return t + network
	case ModeChrome:
		return m.TransitionChrome + network
	case ModeExternalBrowser:
		// App switch plus browser activity start.
		return m.TransitionBrowser + m.TransitionChrome + network
	default: // ModeWebView
		return m.EngineInitWebView + m.TransitionWebView + network
	}
}

// Compare produces the Figure 7 series for one page: CT is measured with
// warmup and a mayLaunchUrl hint, the recommended integration.
func (m Model) Compare(requests int) map[Mode]time.Duration {
	return m.CompareInto(requests, nil)
}

// CompareInto is Compare writing into dst (allocated when nil). Sweeps
// evaluating the model across thousands of request counts reuse one map
// instead of allocating per point.
func (m Model) CompareInto(requests int, dst map[Mode]time.Duration) map[Mode]time.Duration {
	if dst == nil {
		dst = make(map[Mode]time.Duration, len(Modes))
	}
	dst[ModeCustomTab] = m.LoadTime(ModeCustomTab, requests, true, true)
	dst[ModeChrome] = m.LoadTime(ModeChrome, requests, false, false)
	dst[ModeExternalBrowser] = m.LoadTime(ModeExternalBrowser, requests, false, false)
	dst[ModeWebView] = m.LoadTime(ModeWebView, requests, false, false)
	return dst
}

// Speedup returns how many times faster a is than b for the same page.
func (m Model) Speedup(a, b Mode, requests int) float64 {
	ta := m.Compare(requests)[a]
	tb := m.Compare(requests)[b]
	if ta == 0 {
		return 0
	}
	return float64(tb) / float64(ta)
}
