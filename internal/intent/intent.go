// Package intent models Android intents and Web URI intent resolution
// (§4.2): when a user taps an http(s) link, Android raises a VIEW intent
// that the default browser handles — unless an installed app's verified
// deep-link filter claims the domain, or (the behaviour the paper
// uncovers) the hosting app never raises the intent and opens an In-App
// Browser instead.
package intent

import (
	"net/url"
	"strings"

	"repro/internal/android"
)

// Intent is a simplified Android intent.
type Intent struct {
	Action     string
	Categories []string
	Data       string // the data URI
	Package    string // explicit target package ("" for implicit)
}

// NewWebURI builds the implicit VIEW intent Android raises for a web link.
func NewWebURI(link string) Intent {
	return Intent{
		Action:     android.ActionView,
		Categories: []string{android.CategoryBrowsable, android.CategoryDefault},
		Data:       link,
	}
}

// IsWebURI reports whether the intent is a VIEW over http(s).
func (in Intent) IsWebURI() bool {
	if in.Action != android.ActionView {
		return false
	}
	u, err := url.Parse(in.Data)
	if err != nil {
		return false
	}
	return u.Scheme == "http" || u.Scheme == "https"
}

// Host returns the data URI's host ("" when unparsable).
func (in Intent) Host() string {
	u, err := url.Parse(in.Data)
	if err != nil {
		return ""
	}
	return u.Host
}

// Filter describes one handler's intent filter, reduced to what Web URI
// resolution needs: the domains an app has verified deep links for.
type Filter struct {
	Package string
	Hosts   []string // verified app-link hosts; nil for browsers
	Browser bool     // the handler is a browser (matches any host)
}

// Matches reports whether the filter accepts the intent.
func (f Filter) Matches(in Intent) bool {
	if !in.IsWebURI() {
		return false
	}
	if f.Browser {
		return true
	}
	host := in.Host()
	for _, h := range f.Hosts {
		if host == h || strings.HasSuffix(host, "."+h) {
			return true
		}
	}
	return false
}

// Resolution says who handles a Web URI intent.
type Resolution struct {
	Package string
	Browser bool
}

// Resolve implements Android 12+ Web URI dispatch: a verified app-link
// handler wins; otherwise the default browser. The zero Resolution (no
// handler) is returned when no browser is installed.
func Resolve(in Intent, filters []Filter, defaultBrowser string) (Resolution, bool) {
	if !in.IsWebURI() {
		return Resolution{}, false
	}
	for _, f := range filters {
		if !f.Browser && f.Matches(in) {
			return Resolution{Package: f.Package}, true
		}
	}
	if defaultBrowser != "" {
		return Resolution{Package: defaultBrowser, Browser: true}, true
	}
	return Resolution{}, false
}
