package intent

import (
	"testing"

	"repro/internal/android"
)

func TestNewWebURI(t *testing.T) {
	in := NewWebURI("https://example.com/x")
	if in.Action != android.ActionView || !in.IsWebURI() {
		t.Errorf("intent = %+v", in)
	}
	if in.Host() != "example.com" {
		t.Errorf("Host = %q", in.Host())
	}
}

func TestNonWebURIs(t *testing.T) {
	for _, data := range []string{"myapp://open", "ftp://x/y", "notaurl\x00://", ""} {
		in := Intent{Action: android.ActionView, Data: data}
		if in.IsWebURI() {
			t.Errorf("IsWebURI(%q) = true", data)
		}
	}
	in := Intent{Action: "android.intent.action.SEND", Data: "https://example.com"}
	if in.IsWebURI() {
		t.Error("SEND intent classified as Web URI")
	}
}

func TestResolvePrefersVerifiedAppLink(t *testing.T) {
	filters := []Filter{
		{Package: "com.google.maps", Hosts: []string{"maps.google.com"}},
		{Package: "com.android.chrome", Browser: true},
	}
	res, ok := Resolve(NewWebURI("https://maps.google.com/place/x"), filters, "com.android.chrome")
	if !ok || res.Package != "com.google.maps" || res.Browser {
		t.Errorf("resolution = %+v ok=%v", res, ok)
	}
	// Subdomains of a verified host match.
	res, ok = Resolve(NewWebURI("https://www.maps.google.com/"), filters, "com.android.chrome")
	if !ok || res.Package != "com.google.maps" {
		t.Errorf("subdomain resolution = %+v", res)
	}
}

func TestResolveFallsBackToBrowser(t *testing.T) {
	res, ok := Resolve(NewWebURI("https://example.com/"), nil, "com.android.chrome")
	if !ok || !res.Browser || res.Package != "com.android.chrome" {
		t.Errorf("resolution = %+v ok=%v", res, ok)
	}
}

func TestResolveNoHandler(t *testing.T) {
	if _, ok := Resolve(NewWebURI("https://example.com/"), nil, ""); ok {
		t.Error("resolved with no browser installed")
	}
	if _, ok := Resolve(Intent{Action: android.ActionView, Data: "myapp://x"}, nil, "chrome"); ok {
		t.Error("non-web intent resolved")
	}
}
