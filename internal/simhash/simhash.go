// Package simhash implements locality-sensitive hashing of text and DOM
// structure in the style of Cloaker Catcher [53], which Facebook and
// Instagram's WebView-based IABs inject to detect client-side cloaking
// (Table 8): similar pages produce hashes at small Hamming distance,
// letting a server compare the page a user saw against the page its
// crawler saw.
package simhash

import (
	"hash/fnv"
	"math/bits"
	"strings"

	"repro/internal/dom"
)

// Hash is a 64-bit similarity-preserving fingerprint.
type Hash uint64

// HammingDistance counts differing bits between two hashes.
func HammingDistance(a, b Hash) int {
	return bits.OnesCount64(uint64(a) ^ uint64(b))
}

// Similar reports whether two hashes are within the given Hamming radius.
func Similar(a, b Hash, radius int) bool { return HammingDistance(a, b) <= radius }

// features hashes each feature string and accumulates the signed bit
// histogram that defines simhash.
func fromFeatures(feats []string) Hash {
	if len(feats) == 0 {
		return 0
	}
	var counts [64]int
	for _, f := range feats {
		h := fnv.New64a()
		h.Write([]byte(f))
		v := h.Sum64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			} else {
				counts[b]--
			}
		}
	}
	var out uint64
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			out |= 1 << uint(b)
		}
	}
	return Hash(out)
}

// Text fingerprints a text using word-level shingles (size 3), the
// Cloaker Catcher text representation.
func Text(text string) Hash {
	words := strings.Fields(strings.ToLower(text))
	if len(words) == 0 {
		return 0
	}
	var feats []string
	if len(words) < 3 {
		feats = words
	} else {
		for i := 0; i+3 <= len(words); i++ {
			feats = append(feats, strings.Join(words[i:i+3], " "))
		}
	}
	return fromFeatures(feats)
}

// DOM fingerprints the element structure: parent→child tag bigrams, which
// capture layout without content.
func DOM(d *dom.Document) Hash {
	var feats []string
	d.Root.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		parent := "#root"
		if n.Parent != nil && n.Parent.Type == dom.ElementNode {
			parent = n.Parent.Tag
		}
		feats = append(feats, parent+">"+n.Tag)
		return true
	})
	return fromFeatures(feats)
}

// TextAndDOM combines both representations, the third hash the FB/IG
// injection reports.
func TextAndDOM(d *dom.Document) Hash {
	text := Text(d.Root.Text())
	structure := DOM(d)
	// Interleave bits from the two hashes so both views contribute.
	var out uint64
	for b := 0; b < 64; b++ {
		var src Hash
		if b%2 == 0 {
			src = text
		} else {
			src = structure
		}
		if src&(1<<uint(b)) != 0 {
			out |= 1 << uint(b)
		}
	}
	return Hash(out)
}
