package simhash

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

const article = `The quick brown fox jumps over the lazy dog while the
sun sets behind the distant mountains and the river flows quietly through
the valley carrying leaves and memories of the long summer days`

func TestIdenticalTextsCollide(t *testing.T) {
	if Text(article) != Text(article) {
		t.Error("identical texts hash differently")
	}
}

func TestSimilarTextsAreClose(t *testing.T) {
	perturbed := strings.Replace(article, "quick", "fast", 1)
	d := HammingDistance(Text(article), Text(perturbed))
	if d > 16 {
		t.Errorf("one-word change moved hash by %d bits", d)
	}
	if !Similar(Text(article), Text(perturbed), 16) {
		t.Error("similar texts not Similar")
	}
}

func TestDissimilarTextsAreFar(t *testing.T) {
	other := `completely different content about cryptographic protocols
and their formal verification using model checking temporal logic and
abstract interpretation frameworks in distributed systems research papers`
	d := HammingDistance(Text(article), Text(other))
	if d < 10 {
		t.Errorf("unrelated texts only %d bits apart", d)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Text("") != 0 {
		t.Error("empty text hash non-zero")
	}
	if Text("one two") == 0 {
		t.Error("short text hash zero")
	}
}

func TestDOMHashing(t *testing.T) {
	a := dom.Parse(`<html><body><div><p>x</p><p>y</p></div></body></html>`)
	b := dom.Parse(`<html><body><div><p>different text</p><p>entirely</p></div></body></html>`)
	c := dom.Parse(`<html><body><table><tr><td>x</td></tr></table><ul><li>q</li></ul></body></html>`)
	// Same structure, different text: identical DOM hash.
	if DOM(a) != DOM(b) {
		t.Error("same-structure documents hash differently")
	}
	if HammingDistance(DOM(a), DOM(c)) < 8 {
		t.Error("different structures too close")
	}
	// Combined hash differs when text differs.
	if TextAndDOM(a) == TextAndDOM(b) {
		t.Error("combined hash ignores text")
	}
}

func TestHammingDistanceProperties(t *testing.T) {
	prop := func(a, b uint64) bool {
		d := HammingDistance(Hash(a), Hash(b))
		return d >= 0 && d <= 64 &&
			d == HammingDistance(Hash(b), Hash(a)) &&
			(a != b || d == 0)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
