// iab-probe: instrument a single app's WebView-based In-App Browser, the
// §3.2.2 deep-dive in miniature. The example installs the Facebook app
// stand-in on a simulated device, hooks its WebView with Frida-style
// instrumentation, visits the controlled measurement page through the
// app's IAB, and dumps everything the injected code did: API calls with
// arguments, bridges, inserted DOM nodes, tag counts, simHashes, perf
// logs, redirector usage and contacted endpoints.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	study := core.NewDynamicStudy()

	// The Facebook stand-in from the corpus's named-app roster.
	n := corpus.NamedApps[0]
	spec := &corpus.Spec{
		Package: n.Package, Title: n.Title, Downloads: n.Downloads,
		OnPlayStore: true, Dynamic: n.Dynamic,
	}

	rows, srv, err := study.ProbeIABs(context.Background(), []*corpus.Spec{spec})
	if err != nil {
		log.Fatal(err)
	}
	row := rows[0]

	fmt.Printf("app: %s (%s surface)\n", row.Title, row.Surface)
	fmt.Printf("click redirector: %s\n\n", row.Redirector)

	fmt.Printf("injected JS programs: %d\n", row.InjectedJSCount)
	fmt.Printf("JS bridges exposed: %v\n\n", row.Bridges)

	fmt.Println("behaviour observations (the app side of the bridges):")
	for k, v := range row.BehaviorStats {
		fmt.Printf("  %-18s %v\n", k, v)
	}

	fmt.Println("\nWeb APIs the injected code exercised (Table 9):")
	for _, tr := range srv.ForApp(spec.Package) {
		fmt.Printf("  %-20s %s\n", tr.Interface, tr.Method)
	}

	fmt.Println("\nendpoints contacted beyond the visited page:")
	for _, h := range row.ExternalHosts {
		fmt.Printf("  %s\n", h)
	}
}
