// Quickstart: analyse a single APK end to end, the way the paper's
// pipeline treats each app — build (or obtain) an APK, open it, decompile
// it to Java source, parse the source for custom WebView subclasses, build
// the call graph, and report the WebView / Custom Tabs usage with SDK
// attribution.
package main

import (
	"fmt"
	"log"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/dalvik"
	"repro/internal/decompiler"
	"repro/internal/javaparser"
	"repro/internal/manifest"
	"repro/internal/sdkindex"
)

func main() {
	// 1. Synthesise a small app: a launcher activity that boots an ad
	//    SDK whose custom WebView loads ad content and exposes a bridge.
	img, err := buildSampleAPK()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built sample APK: %d bytes\n\n", len(img))

	// 2. Open the archive.
	a, err := apk.Open(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("package: %s (%d classes)\n\n", a.Package(), len(a.Dex.Classes))

	// 3. Decompile and parse each class; find WebView subclasses.
	for _, unit := range decompiler.Decompile(a.Dex) {
		cu, err := javaparser.Parse(unit.Source)
		if err != nil {
			log.Fatalf("parse %s: %v", unit.Path, err)
		}
		for _, td := range cu.Types {
			if td.Extends != "" && cu.Resolve(td.Extends) == android.WebViewClass {
				fmt.Printf("custom WebView subclass: %s\n", cu.Resolve(td.Name))
			}
		}
	}

	// 4. Build the call graph, traverse from Android entry points.
	g := callgraph.Build(a.Dex)
	excl := map[string]bool{}
	for _, dl := range a.Manifest.DeepLinkActivities() {
		excl[dl] = true
	}
	usage := g.AnalyzeUsage(excl)
	fmt.Printf("\nuses WebView: %v   uses Custom Tabs: %v\n", usage.UsesWebView(), usage.UsesCT())
	fmt.Printf("WebView methods called: %v\n\n", usage.MethodsCalled())

	// 5. Attribute call sites to SDKs with the Play SDK Index stand-in.
	idx := sdkindex.Default()
	for _, call := range usage.WebViewCalls {
		if sdk, ok := idx.Lookup(call.CallerPackage()); ok {
			fmt.Printf("  %-28s -> %s (%s SDK: %s)\n",
				call.Caller.Class+"."+call.Caller.Name, call.Target.Name, sdk.Category, sdk.Name)
		} else {
			fmt.Printf("  %-28s -> %s (first-party code)\n",
				call.Caller.Class+"."+call.Caller.Name, call.Target.Name)
		}
	}
}

func buildSampleAPK() ([]byte, error) {
	b := dalvik.NewBuilder()
	b.Class("com.demo.app.MainActivity", android.ActivityClass, dalvik.AccPublic).
		Source("MainActivity.java").
		VoidMethod("onCreate",
			dalvik.InvokeStatic("com.applovin.Bootstrap", "start", "()void"),
			dalvik.InvokeStatic("com.demo.app.web.Preview", "show", "()void"),
		)
	b.Class("com.applovin.widget.AdWebView", android.WebViewClass, dalvik.AccPublic).
		Source("AdWebView.java").
		VoidMethod("configure")
	b.Class("com.applovin.Bootstrap", android.ObjectClass, dalvik.AccPublic|dalvik.AccFinal).
		Method("start", "()void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.NewInstance("com.applovin.widget.AdWebView"),
			dalvik.InvokeDirect("com.applovin.widget.AdWebView", "<init>", "(Context)void"),
			dalvik.ConstString("https://cdn.applovin.example/ad"),
			dalvik.InvokeVirtual("com.applovin.widget.AdWebView", android.MethodLoadURL, "(String)void"),
			dalvik.ConstString("AppLovinBridge"),
			dalvik.InvokeVirtual("com.applovin.widget.AdWebView", android.MethodAddJavascriptInterface, "(Object,String)void"),
			dalvik.Return(),
		)
	b.Class("com.demo.app.web.Preview", android.ObjectClass, dalvik.AccPublic).
		Method("show", "()void", dalvik.AccPublic|dalvik.AccStatic,
			dalvik.ConstString("https://app.demo.com/home"),
			dalvik.InvokeVirtual(android.WebViewClass, android.MethodLoadURL, "(String)void"),
			dalvik.Return(),
		)
	m := &manifest.Manifest{
		Package:     "com.demo.app",
		VersionCode: 1,
		Components: []manifest.Component{{
			Kind:     manifest.KindActivity,
			Name:     "com.demo.app.MainActivity",
			Exported: true,
			Filters: []manifest.IntentFilter{{
				Actions:    []string{android.ActionMain},
				Categories: []string{android.CategoryLauncher},
			}},
		}},
	}
	dex, err := b.Build()
	if err != nil {
		return nil, err
	}
	return apk.Pack(m, dex, nil)
}
