// oauth-flows: the paper's authentication takeaway (§4.1.8, RFC 8252) as
// a runnable demonstration. The same identity-provider login flow runs
// twice:
//
//  1. in a WebView — where the embedding app injects JavaScript into the
//     IdP's login page and captures the user's credentials as typed, and
//     afterwards reads the IdP session cookie via CookieManager; and
//  2. in a Custom Tab — where the app receives only engagement signals,
//     has no handle on the page or cookies, and the user's existing
//     browser session makes re-login unnecessary.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/cookiejar"

	"repro/internal/customtabs"
	"repro/internal/internet"
	"repro/internal/jsvm"
	"repro/internal/webview"
)

const loginPage = `<!DOCTYPE html>
<html><head><title>IdP - Sign in</title></head><body>
<form id="login" action="/session" method="post">
  <input type="email" name="email" id="email">
  <input type="password" name="password" id="password">
  <button type="submit">Sign in</button>
</form>
</body></html>`

func idpInternet() *internet.Internet {
	net := internet.New()
	net.RegisterFunc("idp.example", func(w http.ResponseWriter, r *http.Request) {
		if _, err := r.Cookie("idp_session"); err == nil {
			w.Write([]byte(`<html><head><title>IdP - Signed in</title></head><body>welcome back</body></html>`))
			return
		}
		http.SetCookie(w, &http.Cookie{Name: "idp_session", Value: "sess-8c1f"})
		w.Write([]byte(loginPage))
	})
	return net
}

func main() {
	fmt.Println("=== Flow 1: OAuth login inside a WebView (what the paper warns about) ===")
	webViewFlow()
	fmt.Println()
	fmt.Println("=== Flow 2: the same login in a Custom Tab (the RFC 8252 way) ===")
	customTabFlow()
}

func webViewFlow() {
	net := idpInternet()
	jar, _ := cookiejar.New(nil)
	wv := webview.New(webview.Config{
		ID: "wv", AppPackage: "com.host.app",
		Client: &http.Client{Jar: jar, Transport: net},
	})
	wv.GetSettings().JavaScriptEnabled = true

	// The app plants a credential-harvesting bridge before the login page
	// loads — nothing in the WebView API prevents this.
	var captured []string
	harvester := jsvm.NewObject()
	harvester.SetFunc("submit", func(c jsvm.Call) (jsvm.Value, error) {
		captured = append(captured, c.Arg(0).StringValue())
		return jsvm.Undefined(), nil
	})
	wv.AddJavascriptInterface(harvester, "_hostAnalytics")

	if err := wv.LoadURL(context.Background(), "https://idp.example/authorize"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("login page loaded: %q\n", wv.Page().Doc.Title)

	// The user types their credentials (the user agent fills the DOM).
	if _, err := wv.Page().Execute(`
var email = document.getElementById("email");
var pw = document.getElementById("password");
email.setAttribute("value", "alice@example.com");
pw.setAttribute("value", "hunter2");`); err != nil {
		log.Fatal(err)
	}

	// The app's injected script reads the form before submission.
	if err := wv.EvaluateJavascript(`
var fields = document.querySelectorAll("input");
var leak = [];
for (var i = 0; i < fields.length; i++) {
    var v = fields[i].getAttribute("value");
    if (v) { leak.push(v); }
}
_hostAnalytics.submit(leak.join(":"));`, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("app captured the user's credentials: %v\n", captured)

	// And afterwards the app reads the IdP session cookie.
	cookie := wv.CookieManager().GetCookie("https://idp.example/")
	fmt.Printf("app read the IdP session cookie:     %q\n", cookie)
	fmt.Println("-> a WebView gives the host app the user's password AND session.")
}

func customTabFlow() {
	net := idpInternet()
	browser := customtabs.NewBrowser("com.android.chrome", nil)
	browser.Client.Transport = net
	browser.Warmup()

	var signals []string
	intent := customtabs.NewBuilder().
		SetCallback(func(s customtabs.EngagementSignal) { signals = append(signals, s.Event) }).
		SetAppPackage("com.host.app").
		Build()

	// First launch: the user signs in inside the browser context.
	sess, err := browser.LaunchURL(context.Background(), intent, "https://idp.example/authorize")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first launch shows:  %q\n", sess.Title)
	fmt.Printf("app observed only engagement signals: %v\n", signals)

	// Second launch (any app on the device): the browser session persists,
	// so the user is already signed in — no password ever re-enters an
	// app-controlled surface.
	sess2, err := browser.LaunchURL(context.Background(), intent, "https://idp.example/authorize")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second launch shows: %q (session persisted in the browser)\n", sess2.Title)
	fmt.Println("-> a Custom Tab never exposes credentials, cookies or page content to the app.")
}
