// sdk-audit: the paper's central policy question, as a tool — which apps
// in a corpus rely on WebView-based SDKs for use cases that handle
// sensitive data (payments, authentication) and should migrate to Custom
// Tabs (§4.1.4, §4.1.8)?
//
// The example generates a reduced corpus, runs the static pipeline over
// in-process repository/store services, and prints the offending apps and
// SDKs with the takeaway statistics.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sort"

	"repro/internal/android"
	"repro/internal/androzoo"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/playstore"
	"repro/internal/sdkindex"
)

func main() {
	c, err := corpus.Generate(corpus.Config{Seed: 7, Scale: 400})
	if err != nil {
		log.Fatal(err)
	}
	azSrv := httptest.NewServer(androzoo.NewServer(c).Handler())
	defer azSrv.Close()
	psSrv := httptest.NewServer(playstore.NewServer(c).Handler())
	defer psSrv.Close()

	study, err := core.NewStaticStudy(
		androzoo.NewClient(azSrv.URL, azSrv.Client()),
		playstore.NewClient(psSrv.URL, psSrv.Client()),
		core.StaticConfig{},
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	sensitive := map[sdkindex.Category]bool{
		sdkindex.Payments:       true,
		sdkindex.Authentication: true,
	}

	type finding struct {
		app      string
		sdk      string
		category sdkindex.Category
		bridge   bool // exposes a JS bridge to the sensitive WebView
	}
	var findings []finding
	migrated := map[string]bool{} // sensitive SDKs already seen using CTs

	for _, app := range res.Apps {
		for _, hit := range app.CTSDKs {
			if sensitive[hit.Category] {
				migrated[hit.SDK] = true
			}
		}
		for _, hit := range app.WebViewSDKs {
			if !sensitive[hit.Category] {
				continue
			}
			f := finding{app: app.Package, sdk: hit.SDK, category: hit.Category}
			for _, m := range hit.Methods {
				if m == android.MethodAddJavascriptInterface {
					f.bridge = true
				}
			}
			findings = append(findings, f)
		}
	}

	fmt.Printf("audited %d apps: %d sensitive WebView-SDK integrations found\n\n",
		len(res.Apps), len(findings))

	perSDK := map[string]int{}
	bridged := map[string]int{}
	for _, f := range findings {
		perSDK[f.sdk]++
		if f.bridge {
			bridged[f.sdk]++
		}
	}
	names := make([]string, 0, len(perSDK))
	for n := range perSDK {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return perSDK[names[i]] > perSDK[names[j]] })

	fmt.Println("SDKs handling sensitive flows in WebViews (should migrate to CTs):")
	for _, n := range names {
		note := ""
		if migrated[n] {
			note = "  [also seen using CTs — migration in progress]"
		}
		fmt.Printf("  %-28s %3d apps, %d exposing a JS bridge%s\n", n, perSDK[n], bridged[n], note)
	}

	fmt.Println("\nsensitive SDKs already using Custom Tabs:")
	ctNames := make([]string, 0, len(migrated))
	for n := range migrated {
		ctNames = append(ctNames, n)
	}
	sort.Strings(ctNames)
	for _, n := range ctNames {
		fmt.Printf("  %s\n", n)
	}
}
