// crawl-measure: a miniature of the §3.2.2 top-site crawl. It boots a
// device on an internet serving synthetic CrUX top sites, installs
// LinkedIn (Cedexis Radar injections) and the System WebView Shell
// baseline, and crawls 20 sites over a real ADB TCP connection —
// reporting, per site category, how many endpoints of each kind the IAB
// contacted beyond the visited site.
package main

import (
	"fmt"
	"log"

	"repro/internal/adb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/crux"
	"repro/internal/sitereview"
)

func main() {
	study := core.NewDynamicStudy()
	sites := crux.TopSites(20)
	crux.RegisterAll(study.Net, sites)

	linkedin := &corpus.Spec{
		Package: "com.linkedin.android", Title: "LinkedIn", OnPlayStore: true,
		Dynamic: corpus.Dynamic{
			HasUserContent: true, LinkSurface: "Post",
			LinkOpens: corpus.LinkWebView, Injection: corpus.InjectRadar,
		},
	}
	if _, err := study.Device.Install(linkedin); err != nil {
		log.Fatal(err)
	}
	if _, err := study.Device.Install(core.BaselineShellSpec()); err != nil {
		log.Fatal(err)
	}

	srv := adb.NewServer(study.Device)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	client, err := adb.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	cr := crawler.New(client, crawler.Config{
		Apps:  []string{"com.linkedin.android", "org.chromium.webview_shell"},
		Sites: sites,
		OwnDomains: map[string][]string{
			"com.linkedin.android": {"linkedin.com", "licdn.com"},
		},
	})
	res, err := cr.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crawled %d sites with 2 apps (%d visits)\n\n", len(sites), len(res.Visits))
	for _, app := range []string{"com.linkedin.android", "org.chromium.webview_shell"} {
		fmt.Printf("%s:\n", app)
		avg := res.AverageEndpoints(app)
		for _, cat := range crux.Categories() {
			if avg[cat] == nil && res.TotalAverage(app, cat) == 0 {
				continue
			}
			fmt.Printf("  %-14s avg %.1f endpoints (trackers %.1f, own services %.1f)\n",
				cat, res.TotalAverage(app, cat),
				kindAvg(avg, cat, sitereview.Tracker), kindAvg(avg, cat, sitereview.OwnService))
		}
		fmt.Println()
	}
}

func kindAvg(m map[string]map[sitereview.Kind]float64, cat string, k sitereview.Kind) float64 {
	if m[cat] == nil {
		return 0
	}
	return m[cat][k]
}
