// Ablation benchmarks for the design choices the methodology depends on:
// deep-link exclusion (§3.1.3), entry-point reachability vs naive scanning
// (§3.1.3's call-graph traversal), CT pre-initialisation (Figure 7's
// levers) and pipeline worker scaling. Each reports the quality metric the
// choice buys as benchmark metrics.
package repro

import (
	"context"
	"testing"

	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/pageload"
)

// ablationAPKs decodes a slice of corpus APKs once.
type parsedAPK struct {
	spec *corpus.Spec
	apk  *apk.APK
}

func ablationAPKs(b *testing.B, n int) []parsedAPK {
	b.Helper()
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 1200})
	if err != nil {
		b.Fatal(err)
	}
	var out []parsedAPK
	for _, spec := range c.Filtered() {
		if spec.Broken || len(out) >= n {
			continue
		}
		img, err := corpus.BuildAPK(spec)
		if err != nil {
			b.Fatal(err)
		}
		a, err := apk.Open(img)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, parsedAPK{spec: spec, apk: a})
	}
	return out
}

// BenchmarkAblationDeepLinkExclusion quantifies §3.1.3's deep-link filter:
// without it, first-party deep-link content is misattributed as WebView
// usage. The benchmark reports how many per-app verdicts the filter
// changes (false positives avoided per 100 apps).
func BenchmarkAblationDeepLinkExclusion(b *testing.B) {
	apks := ablationAPKs(b, 120)
	var flipped int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flipped = 0
		for _, pa := range apks {
			g := callgraph.Build(pa.apk.Dex)
			with := map[string]bool{}
			for _, dl := range pa.apk.Manifest.DeepLinkActivities() {
				with[dl] = true
			}
			withUsage := g.AnalyzeUsage(with)
			withoutUsage := g.AnalyzeUsage(nil)
			if withUsage.UsesWebView() != withoutUsage.UsesWebView() {
				flipped++
			}
		}
	}
	b.ReportMetric(float64(flipped)/float64(len(apks))*100, "verdict-flips/100apps")
}

// BenchmarkAblationReachabilityVsNaive quantifies the call-graph
// traversal: a naive scanner that greps every invoke in the dex counts
// dead code (the paper's over-approximation concern cuts the other way —
// traversal is what keeps unreachable library code out of the results).
func BenchmarkAblationReachabilityVsNaive(b *testing.B) {
	apks := ablationAPKs(b, 120)
	var naiveOnly int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveOnly = 0
		for _, pa := range apks {
			g := callgraph.Build(pa.apk.Dex)
			reachable := g.AnalyzeUsage(nil)

			// Naive: every WebView-method invoke anywhere in the dex.
			naive := false
			for _, cls := range pa.apk.Dex.Classes {
				for _, m := range cls.Methods {
					for _, ins := range m.Code {
						if ins.Op.IsInvoke() && g.IsWebViewClass(ins.Target.Class) {
							naive = true
						}
					}
				}
			}
			if naive && !reachable.UsesWebView() {
				naiveOnly++
			}
		}
	}
	b.ReportMetric(float64(naiveOnly)/float64(len(apks))*100, "deadcode-FPs/100apps")
}

// BenchmarkAblationCTWarmup isolates the Figure-7 levers: CT load time
// cold, warmed, and warmed+preloaded, reported as milliseconds.
func BenchmarkAblationCTWarmup(b *testing.B) {
	m := pageload.Default()
	const requests = 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold := m.LoadTime(pageload.ModeCustomTab, requests, false, false)
		warm := m.LoadTime(pageload.ModeCustomTab, requests, true, false)
		preloaded := m.LoadTime(pageload.ModeCustomTab, requests, true, true)
		if !(preloaded < warm && warm < cold) {
			b.Fatal("warmup levers inverted")
		}
		if i == 0 {
			b.ReportMetric(float64(cold.Milliseconds()), "cold-ms")
			b.ReportMetric(float64(warm.Milliseconds()), "warm-ms")
			b.ReportMetric(float64(preloaded.Milliseconds()), "preloaded-ms")
		}
	}
}

// BenchmarkAblationPipelineWorkers1 and ...WorkersN measure the worker
// pool's effect on a full pipeline run.
func BenchmarkAblationPipelineWorkers1(b *testing.B) { benchPipelineWorkers(b, 1) }

// BenchmarkAblationPipelineWorkersN uses GOMAXPROCS workers.
func BenchmarkAblationPipelineWorkersN(b *testing.B) { benchPipelineWorkers(b, 0) }

func benchPipelineWorkers(b *testing.B, workers int) {
	fix := staticSetup(b)
	study, err := core.NewStaticStudy(fix.repo, fix.meta, core.StaticConfig{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := study.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Funnel.Analyzed == 0 {
			b.Fatal("no apps analysed")
		}
	}
}

// BenchmarkAblationObfuscationRecall measures the §3.1.5 limitation:
// with a fraction of apps routing WebView calls through reflection, the
// name-based static analysis loses recall. Reported as missed apps per
// 100 obfuscated WebView apps.
func BenchmarkAblationObfuscationRecall(b *testing.B) {
	c, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 1200, ObfuscationRate: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	var obf, missed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obf, missed = 0, 0
		for _, spec := range c.Filtered() {
			if spec.Broken || !spec.Obfuscated || !spec.UsesWebView() {
				continue
			}
			obf++
			img, err := corpus.BuildAPK(spec)
			if err != nil {
				b.Fatal(err)
			}
			a, err := apk.Open(img)
			if err != nil {
				b.Fatal(err)
			}
			g := callgraph.Build(a.Dex)
			excl := map[string]bool{}
			for _, dl := range a.Manifest.DeepLinkActivities() {
				excl[dl] = true
			}
			if !g.AnalyzeUsage(excl).UsesWebView() {
				missed++
			}
		}
	}
	if obf > 0 {
		b.ReportMetric(float64(missed)/float64(obf)*100, "missed/100obf")
	}
}
