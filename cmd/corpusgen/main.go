// Command corpusgen generates a synthetic app corpus and either prints its
// ground-truth statistics or serves it as AndroZoo + Play Store HTTP
// services for external pipeline runs.
//
// Usage:
//
//	corpusgen [-scale N] [-seed N]                 print corpus statistics
//	corpusgen -serve -azoo :8081 -play :8082       serve the corpus
//
// -cpuprofile/-memprofile capture pprof profiles of the generation;
// -telemetry-addr serves /metrics, /healthz and /debug/pprof (useful while
// -serve keeps the process alive); -metrics-out writes the snapshot on
// exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/androzoo"
	"repro/internal/corpus"
	"repro/internal/playstore"
	"repro/internal/profiling"
	"repro/internal/telemetry"
)

func main() {
	scale := flag.Int("scale", 200, "population divisor (1 = paper scale)")
	seed := flag.Int64("seed", 1, "generation seed")
	serve := flag.Bool("serve", false, "serve the corpus over HTTP")
	list := flag.Int("list", 0, "list the first N filtered packages and exit")
	azooAddr := flag.String("azoo", "127.0.0.1:8081", "AndroZoo listen address")
	playAddr := flag.String("play", "127.0.0.1:8082", "Play Store listen address")
	var prof profiling.Flags
	prof.Register(nil)
	var telem telemetry.Flags
	telem.Register(nil)
	flag.Parse()
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	telem.Hub(*seed)
	if err := telem.Start(); err != nil {
		log.Fatal(err)
	}
	finish := func() {
		if err := telem.Finish(); err != nil {
			log.Print(err)
		}
		if err := prof.Stop(); err != nil {
			log.Print(err)
		}
	}

	c, err := corpus.Generate(corpus.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		finish()
		log.Fatal(err)
	}

	if *list > 0 {
		for _, s := range c.Top(*list) {
			fmt.Printf("%-40s %12d downloads  %s\n", s.Package, s.Downloads, s.PlayCategory)
		}
		finish()
		return
	}
	if !*serve {
		printStats(c)
		finish()
		return
	}

	errc := make(chan error, 2)
	go func() {
		log.Printf("AndroZoo repository on http://%s (snapshot: /snapshot, APKs: /apk/{pkg})", *azooAddr)
		errc <- http.ListenAndServe(*azooAddr, androzoo.NewServer(c).Handler())
	}()
	go func() {
		log.Printf("Play Store metadata on http://%s (/v1/apps/{pkg})", *playAddr)
		errc <- http.ListenAndServe(*playAddr, playstore.NewServer(c).Handler())
	}()
	log.Fatal(<-errc)
}

func printStats(c *corpus.Corpus) {
	fmt.Printf("corpus seed=%d scale=1/%d\n", c.Config.Seed, c.Config.Scale)
	fmt.Printf("  repository entries: %d\n", c.Counts.Total)
	fmt.Printf("  on Play Store:      %d\n", c.Counts.OnPlay)
	fmt.Printf("  100K+ downloads:    %d\n", c.Counts.Popular)
	fmt.Printf("  actively updated:   %d\n", c.Counts.Filtered)
	fmt.Printf("  broken APKs:        %d\n", c.Counts.Broken)
	var wv, ct, both int
	for _, s := range c.Filtered() {
		if s.Broken {
			continue
		}
		if s.UsesWebView() {
			wv++
		}
		if s.UsesCT() {
			ct++
		}
		if s.UsesWebView() && s.UsesCT() {
			both++
		}
	}
	analyzed := c.Counts.Analyzed
	fmt.Printf("ground truth over %d analyzable apps:\n", analyzed)
	fmt.Printf("  using WebViews: %d (%.1f%%, paper 55.7%%)\n", wv, pct(wv, analyzed))
	fmt.Printf("  using CTs:      %d (%.1f%%, paper 19.9%%)\n", ct, pct(ct, analyzed))
	fmt.Printf("  using both:     %d (%.1f%%, paper 15.0%%)\n", both, pct(both, analyzed))
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
