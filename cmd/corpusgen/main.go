// Command corpusgen generates a synthetic app corpus and either prints its
// ground-truth statistics or serves it as AndroZoo + Play Store HTTP
// services for external pipeline runs.
//
// Usage:
//
//	corpusgen [-scale N] [-seed N]                 print corpus statistics
//	corpusgen -preset paper                        full 146.5K-APK snapshot
//	corpusgen -serve -azoo :8081 -play :8082       serve the corpus
//
// -preset paper selects the paper's full population (6.5M repository
// entries, 146.5K analyzable APKs) and switches to streaming generation:
// specs are synthesized from their download rank on demand, so the
// repository is served — and its statistics computed — in bounded memory
// instead of materializing millions of specs. -stream forces the same
// mode at any scale.
//
// -cpuprofile/-memprofile capture pprof profiles of the generation;
// -telemetry-addr serves /metrics, /healthz and /debug/pprof (useful while
// -serve keeps the process alive); -metrics-out writes the snapshot on
// exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/androzoo"
	"repro/internal/corpus"
	"repro/internal/playstore"
	"repro/internal/profiling"
	"repro/internal/telemetry"
)

func main() {
	scale := flag.Int("scale", 200, "population divisor (1 = paper scale)")
	seed := flag.Int64("seed", 1, "generation seed")
	preset := flag.String("preset", "", `corpus preset: "paper" = the full 146.5K-APK snapshot, streamed`)
	stream := flag.Bool("stream", false, "synthesize specs on demand (bounded memory) instead of materializing")
	serve := flag.Bool("serve", false, "serve the corpus over HTTP")
	list := flag.Int("list", 0, "list the first N filtered packages and exit")
	azooAddr := flag.String("azoo", "127.0.0.1:8081", "AndroZoo listen address")
	playAddr := flag.String("play", "127.0.0.1:8082", "Play Store listen address")
	var prof profiling.Flags
	prof.Register(nil)
	var telem telemetry.Flags
	telem.Register(nil)
	flag.Parse()
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	telem.Hub(*seed)
	if err := telem.Start(); err != nil {
		log.Fatal(err)
	}
	finish := func() {
		if err := telem.Finish(); err != nil {
			log.Print(err)
		}
		if err := prof.Stop(); err != nil {
			log.Print(err)
		}
	}

	switch *preset {
	case "":
	case "paper":
		// The paper's full population is ~50x the default fixture; only the
		// streaming generator holds it in bounded memory.
		*scale = 1
		*stream = true
	default:
		finish()
		log.Fatalf("unknown -preset %q (supported: paper)", *preset)
	}

	cfg := corpus.Config{Seed: *seed, Scale: *scale}
	var src corpus.Source
	var counts corpus.Counts
	if *stream {
		snap, err := corpus.NewSnapshot(cfg)
		if err != nil {
			finish()
			log.Fatal(err)
		}
		src, counts = snap, snap.Counts()
	} else {
		c, err := corpus.Generate(cfg)
		if err != nil {
			finish()
			log.Fatal(err)
		}
		src, counts = c, c.Counts
	}

	if *list > 0 {
		printTop(src, *list)
		finish()
		return
	}
	if !*serve {
		printStats(cfg, counts, src)
		finish()
		return
	}

	errc := make(chan error, 2)
	go func() {
		log.Printf("AndroZoo repository on http://%s (snapshot: /snapshot, APKs: /apk/{pkg})", *azooAddr)
		errc <- http.ListenAndServe(*azooAddr, androzoo.NewServerFrom(src).Handler())
	}()
	go func() {
		log.Printf("Play Store metadata on http://%s (/v1/apps/{pkg})", *playAddr)
		errc <- http.ListenAndServe(*playAddr, playstore.NewServerFrom(src).Handler())
	}()
	log.Fatal(<-errc)
}

// printTop lists the first n filtered packages in download-rank order.
func printTop(src corpus.Source, n int) {
	printed := 0
	src.Each(func(s *corpus.Spec) error {
		if printed >= n {
			return errDone
		}
		if !s.Eligible(corpus.MinDownloads, corpus.UpdateCutoff) {
			return nil
		}
		fmt.Printf("%-40s %12d downloads  %s\n", s.Package, s.Downloads, s.PlayCategory)
		printed++
		return nil
	})
}

var errDone = fmt.Errorf("done")

func printStats(cfg corpus.Config, counts corpus.Counts, src corpus.Source) {
	fmt.Printf("corpus seed=%d scale=1/%d\n", cfg.Seed, cfg.Scale)
	fmt.Printf("  repository entries: %d\n", counts.Total)
	fmt.Printf("  on Play Store:      %d\n", counts.OnPlay)
	fmt.Printf("  100K+ downloads:    %d\n", counts.Popular)
	fmt.Printf("  actively updated:   %d\n", counts.Filtered)
	fmt.Printf("  broken APKs:        %d\n", counts.Broken)
	var wv, ct, both, seen int
	src.Each(func(s *corpus.Spec) error {
		if seen == counts.Filtered {
			// Every filtered app lives in the top download ranks; once the
			// funnel is full the remaining millions of entries cannot
			// contribute — stop streaming.
			return errDone
		}
		if !s.Eligible(corpus.MinDownloads, corpus.UpdateCutoff) {
			return nil
		}
		seen++
		if s.Broken {
			return nil
		}
		if s.UsesWebView() {
			wv++
		}
		if s.UsesCT() {
			ct++
		}
		if s.UsesWebView() && s.UsesCT() {
			both++
		}
		return nil
	})
	analyzed := counts.Analyzed
	fmt.Printf("ground truth over %d analyzable apps:\n", analyzed)
	fmt.Printf("  using WebViews: %d (%.1f%%, paper 55.7%%)\n", wv, pct(wv, analyzed))
	fmt.Printf("  using CTs:      %d (%.1f%%, paper 19.9%%)\n", ct, pct(ct, analyzed))
	fmt.Printf("  using both:     %d (%.1f%%, paper 15.0%%)\n", both, pct(both, analyzed))
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
