// Sharded scan plane modes of staticscan:
//
//	staticscan -coordinator ADDR -shards N   partition the snapshot, lease
//	                                         work to joining workers, merge
//	staticscan -worker -join URL             scan leased partitions
//	staticscan -shard-bench 1,4,8            APKs/s per shard count →
//	                                         BENCH_shard.json
//
// The coordinator serves the corpus (streamed, bounded memory) as AndroZoo
// + Play Store endpoints over hardened listeners, so workers are plain
// separate OS processes that reach everything over HTTP. -shard-spawn N
// starts N of them itself from the same binary (-1 = one per shard);
// with -shard-spawn 0 the coordinator waits for externally started
// workers to -join.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/androzoo"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/playstore"
	"repro/internal/report"
	"repro/internal/retry"
	"repro/internal/serving"
	"repro/internal/shard"
	"repro/internal/telemetry/fleet"
	"repro/internal/urlextract"
	"repro/internal/webviewlint"
)

// shardOptions carries the scan-plane flags.
type shardOptions struct {
	coordinator string        // -coordinator listen address
	shards      int           // -shards partition count
	spawn       int           // -shard-spawn worker processes (-1 = one per shard)
	worker      bool          // -worker mode
	join        string        // -join coordinator URL
	ttl         time.Duration // -shard-ttl lease TTL
	dlLatency   time.Duration // -dl-latency modeled APK transfer time
	journalDir  string        // -journal-dir per-partition journals
	bench       string        // -shard-bench comma list of shard counts
	benchOut    string        // -bench-out JSON path

	federation      bool   // -fleet-federation observability plane
	fleetMetricsOut string // -fleet-metrics-out federated exposition path
	fleetTraceOut   string // -fleet-trace-out stitched fleet trace path
	fleetBenchOut   string // -fleet-bench-out federation overhead JSON path
}

// workerName builds a unique lease identity for this process.
func workerName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// runWorker joins a coordinator and scans partitions until the run is done.
func runWorker(o options, so shardOptions) error {
	if so.join == "" {
		return fmt.Errorf("-worker needs -join URL")
	}
	var pol *retry.Policy
	if o.retries > 0 {
		pol = &retry.Policy{MaxAttempts: o.retries + 1, Metrics: &retry.Metrics{}}
	}
	w, err := shard.NewWorker(shard.WorkerConfig{
		Coordinator: so.join,
		Name:        workerName(),
		Retry:       pol,
		Telemetry:   o.telemetry,
		// Federated runs scrape this worker live; the spec gates whether the
		// endpoint actually starts.
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		return err
	}
	if err := w.Run(context.Background()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "worker %s: %d partitions completed\n", workerName(), w.Completed())
	return nil
}

// referenceConfigKey fingerprints the analysis configuration the
// coordinator expects every worker to run.
func referenceConfigKey(o options) (string, error) {
	cfg := pipeline.Config{}
	if o.lint || o.lintRules != nil {
		lint, err := webviewlint.New(webviewlint.Config{Rules: o.lintRules})
		if err != nil {
			return "", err
		}
		cfg.Lint = lint
	}
	if o.urls {
		cfg.URLs = urlextract.New(urlextract.Config{})
	}
	return pipeline.New(nil, nil, cfg).ConfigKey(), nil
}

// corpusPlane serves the streamed corpus as AndroZoo + Play Store
// endpoints on hardened listeners.
type corpusPlane struct {
	snap   *corpus.Snapshot
	az, ps *serving.Endpoint
}

func startCorpusPlane(o options) (*corpusPlane, error) {
	snap, err := corpus.NewSnapshot(corpus.Config{Seed: o.seed, Scale: o.scale})
	if err != nil {
		return nil, err
	}
	az, err := serving.Listen("127.0.0.1:0", androzoo.NewServerFrom(snap).Handler())
	if err != nil {
		return nil, err
	}
	ps, err := serving.Listen("127.0.0.1:0", playstore.NewServerFrom(snap).Handler())
	if err != nil {
		az.Close()
		return nil, err
	}
	return &corpusPlane{snap: snap, az: az, ps: ps}, nil
}

func (p *corpusPlane) Close() {
	p.az.Close()
	p.ps.Close()
}

// buildSpec assembles the RunSpec the coordinator hands to workers.
func buildSpec(o options, so shardOptions, plane *corpusPlane, shards, pipelineWorkers int) (shard.RunSpec, error) {
	key, err := referenceConfigKey(o)
	if err != nil {
		return shard.RunSpec{}, err
	}
	return shard.RunSpec{
		Shards:          shards,
		RepoURL:         "http://" + plane.az.Addr,
		StoreURL:        "http://" + plane.ps.Addr,
		MinDownloads:    corpus.MinDownloads,
		UpdatedAfter:    corpus.UpdateCutoff,
		Workers:         pipelineWorkers,
		Lint:            o.lint,
		LintRules:       o.lintRules,
		URLs:            o.urls,
		MaxFailureFrac:  o.maxFailureFrac,
		CacheDir:        o.cachedir,
		JournalDir:      so.journalDir,
		DownloadLatency: so.dlLatency,
		LeaseTTL:        so.ttl,
		ConfigKey:       key,
		Seed:            o.seed,
		Federation:      so.federation,
		Trace:           so.federation,
		Wallclock:       o.wallclock,
		CorpusEntries:   plane.snap.Total(),
	}, nil
}

// workerEnvGuard lets a test binary reuse itself as the worker executable:
// when the variable is set, TestMain dispatches straight into main().
const workerEnvGuard = "STATICSCAN_WORKER_PROCESS"

// spawnWorkers starts n worker processes of this same binary against the
// coordinator URL. Their stderr is inherited; a worker that exits nonzero
// is reported but not fatal — the lease TTL re-issues its partitions.
func spawnWorkers(n int, joinURL string, o options) ([]*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	var cmds []*exec.Cmd
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-worker", "-join", joinURL, "-retries", fmt.Sprint(o.retries))
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(), workerEnvGuard+"=1")
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
			}
			return nil, fmt.Errorf("spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// shardedScan runs one full coordinator-side scan: lease out shards
// partitions of the served corpus, optionally spawn worker processes, wait
// for the merge. Returns the merged result, the wall time from worker
// start to merged report, and the coordinator (whose fleet federator
// outlives the listener, for post-run exports).
func shardedScan(o options, so shardOptions, plane *corpusPlane, shards, spawn, pipelineWorkers int) (*pipeline.Result, time.Duration, *shard.Coordinator, error) {
	spec, err := buildSpec(o, so, plane, shards, pipelineWorkers)
	if err != nil {
		return nil, 0, nil, err
	}
	coord, err := shard.NewCoordinator(shard.CoordinatorConfig{Spec: spec, Telemetry: o.telemetry})
	if err != nil {
		return nil, 0, nil, err
	}
	addr := so.coordinator
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ep, err := serving.Listen(addr, coord.Handler())
	if err != nil {
		return nil, 0, nil, err
	}
	defer ep.Close()
	joinURL := "http://" + ep.Addr
	fmt.Fprintf(os.Stderr, "coordinator on %s: %d shards over %d repository entries\n",
		joinURL, shards, plane.snap.Total())

	start := time.Now()
	var cmds []*exec.Cmd
	if spawn != 0 {
		n := spawn
		if n < 0 {
			n = shards
		}
		if cmds, err = spawnWorkers(n, joinURL, o); err != nil {
			return nil, 0, nil, err
		}
	}
	res, err := coord.Wait(context.Background())
	wall := time.Since(start)
	for _, cmd := range cmds {
		if werr := cmd.Wait(); werr != nil {
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", cmd.Process.Pid, werr)
		}
	}
	if err != nil {
		return nil, 0, nil, err
	}
	fmt.Fprintf(os.Stderr, "merged %d shards in %v (merge itself %v)\n", shards, wall, coord.MergeLatency())
	return res, wall, coord, nil
}

// writeFleetOutputs writes the post-run federated exports a sharded scan
// was asked for.
func writeFleetOutputs(coord *shard.Coordinator, so shardOptions) error {
	fed := coord.Fleet()
	if fed == nil {
		return nil
	}
	if so.fleetMetricsOut != "" {
		if err := writeFile(so.fleetMetricsOut, fed.WriteFleetProm); err != nil {
			return fmt.Errorf("fleet-metrics-out: %w", err)
		}
	}
	if so.fleetTraceOut != "" {
		if err := writeFile(so.fleetTraceOut, fed.WriteTraceJSONL); err != nil {
			return fmt.Errorf("fleet-trace-out: %w", err)
		}
	}
	return nil
}

// writeFile writes via write to path, or to stdout when path is "-".
func writeFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// staticResult wraps a merged pipeline result into the report-ready shape
// the sequential path produces (core computes aggregates the same way).
func staticResult(res *pipeline.Result) *core.StaticResult {
	return &core.StaticResult{
		Funnel:      res.Funnel,
		Apps:        res.Apps,
		Aggregates:  pipeline.Aggregate(res),
		Quarantined: res.Quarantined,
		Stats:       res.Stats,
	}
}

// runCoordinator is the -coordinator entry point: one sharded scan, then
// the standard report.
func runCoordinator(out *os.File, o options, so shardOptions) error {
	if so.shards < 1 {
		return fmt.Errorf("-coordinator needs -shards >= 1")
	}
	if so.journalDir != "" {
		if err := os.MkdirAll(so.journalDir, 0o755); err != nil {
			return err
		}
	}
	plane, err := startCorpusPlane(o)
	if err != nil {
		return err
	}
	defer plane.Close()
	res, wall, coord, err := shardedScan(o, so, plane, so.shards, so.spawn, o.workers)
	if err != nil {
		return err
	}
	apks := res.Funnel.Filtered
	fmt.Fprintf(os.Stderr, "throughput: %d APKs in %v = %.1f APKs/s\n",
		apks, wall, float64(apks)/wall.Seconds())
	if err := writeFleetOutputs(coord, so); err != nil {
		return err
	}
	printStaticReport(out, o, staticResult(res))
	return nil
}

// --- benchmark -----------------------------------------------------------

// benchEntry is one shard count's measurement in BENCH_shard.json.
type benchEntry struct {
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"` // worker processes
	WallMs     float64 `json:"wallMs"`
	APKs       int     `json:"apks"`
	APKsPerSec float64 `json:"apksPerSec"`
	Speedup    float64 `json:"speedup"` // vs the 1-shard entry
}

// benchDoc is the BENCH_shard.json document.
type benchDoc struct {
	Scale                   int          `json:"scale"`
	Seed                    int64        `json:"seed"`
	SnapshotEntries         int          `json:"snapshotEntries"`
	DownloadLatencyMs       float64      `json:"downloadLatencyMs"`
	PipelineWorkersPerShard int          `json:"pipelineWorkersPerShard"`
	Entries                 []benchEntry `json:"entries"`
	// MergeIdentical reports whether the highest-shard-count merged report
	// rendered byte-identically to a sequential single-process run.
	MergeIdentical bool `json:"mergeIdentical"`
}

// fleetBenchEntry is one shard count's federation A/B measurement: the
// same configuration run with the fleet observability plane off (the
// baseline, identical to the pre-federation plane) and on.
type fleetBenchEntry struct {
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	BaseWallMs   float64 `json:"baseWallMs"`
	FedWallMs    float64 `json:"fedWallMs"`
	OverheadFrac float64 `json:"overheadFrac"` // fedWall/baseWall - 1
	APKs         int     `json:"apks"`
	// StageLatency summarises the federated rollup's per-stage latency
	// histograms at the operator percentiles (seed-derived durations unless
	// -telemetry-wallclock).
	StageLatency map[string]fleet.Quantiles `json:"stageLatency,omitempty"`
}

// fleetBenchDoc is the BENCH_fleet.json document: what federation costs.
type fleetBenchDoc struct {
	Scale             int               `json:"scale"`
	Seed              int64             `json:"seed"`
	SnapshotEntries   int               `json:"snapshotEntries"`
	DownloadLatencyMs float64           `json:"downloadLatencyMs"`
	Entries           []fleetBenchEntry `json:"entries"`
	// MaxOverheadFrac is the worst federation overhead across entries —
	// the number the ≤3% budget is checked against.
	MaxOverheadFrac float64 `json:"maxOverheadFrac"`
	// MergeIdentical reports whether the federated runs' merged reports
	// also rendered byte-identically to the sequential reference.
	MergeIdentical bool `json:"mergeIdentical"`
}

// runShardBench measures APKs/s at each shard count in so.bench and writes
// BENCH_shard.json. Every configuration spawns one worker process per
// shard with a single-worker pipeline, so added shards buy overlapped
// download latency (and extra cores when the host has them), exactly like
// the production plane against the network-bound AndroZoo.
func runShardBench(o options, so shardOptions) error {
	var counts []int
	for _, f := range strings.Split(so.bench, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(f, "%d", &n); err != nil || n < 1 {
			return fmt.Errorf("bad -shard-bench entry %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return fmt.Errorf("-shard-bench needs at least one shard count")
	}
	if so.dlLatency == 0 {
		// The real AndroZoo is network-bound; an in-process fixture is not.
		// Model the transfer so the benchmark measures the plane's ability
		// to overlap downloads, not a latency-free fantasy. 50ms is
		// conservative against real AndroZoo APK fetch times.
		so.dlLatency = 50 * time.Millisecond
	}

	plane, err := startCorpusPlane(o)
	if err != nil {
		return err
	}
	defer plane.Close()

	// Sequential single-process reference for the merge-identity assert.
	seqRes, err := sequentialReference(o, plane)
	if err != nil {
		return err
	}
	seqTables := renderReport(o, seqRes)

	doc := benchDoc{
		Scale:                   o.scale,
		Seed:                    o.seed,
		SnapshotEntries:         plane.snap.Total(),
		DownloadLatencyMs:       float64(so.dlLatency) / float64(time.Millisecond),
		PipelineWorkersPerShard: 1,
	}
	fleetDoc := fleetBenchDoc{
		Scale:             o.scale,
		Seed:              o.seed,
		SnapshotEntries:   plane.snap.Total(),
		DownloadLatencyMs: float64(so.dlLatency) / float64(time.Millisecond),
		MergeIdentical:    true,
	}

	// benchRun executes one cold configuration (fresh cache + journals).
	benchRun := func(n int, federation bool) (*pipeline.Result, time.Duration, *shard.Coordinator, error) {
		scratch, err := os.MkdirTemp("", "shardbench")
		if err != nil {
			return nil, 0, nil, err
		}
		defer os.RemoveAll(scratch)
		bo := so
		bo.coordinator = ""
		bo.federation = federation
		bo.journalDir = scratch + "/journal"
		if err := os.MkdirAll(bo.journalDir, 0o755); err != nil {
			return nil, 0, nil, err
		}
		bopts := o
		bopts.cachedir = scratch + "/cache"
		return shardedScan(bopts, bo, plane, n, n, 1)
	}

	var lastMerged *pipeline.Result
	for _, n := range counts {
		// The baseline leg runs with federation off — the pre-federation
		// plane — so BENCH_shard.json stays comparable across versions and
		// the A/B isolates what the observability plane costs.
		res, wall, _, err := benchRun(n, false)
		if err != nil {
			return err
		}
		apks := res.Funnel.Filtered
		entry := benchEntry{
			Shards:     n,
			Workers:    n,
			WallMs:     float64(wall) / float64(time.Millisecond),
			APKs:       apks,
			APKsPerSec: float64(apks) / wall.Seconds(),
		}
		if len(doc.Entries) == 0 {
			entry.Speedup = 1
		} else if doc.Entries[0].Shards == 1 {
			entry.Speedup = entry.APKsPerSec / doc.Entries[0].APKsPerSec
		}
		doc.Entries = append(doc.Entries, entry)
		fmt.Fprintf(os.Stderr, "bench: %d shards → %.1f APKs/s (%.2fx)\n",
			n, entry.APKsPerSec, entry.Speedup)
		lastMerged = res

		if so.federation {
			fres, fwall, coord, err := benchRun(n, true)
			if err != nil {
				return err
			}
			fe := fleetBenchEntry{
				Shards:       n,
				Workers:      n,
				BaseWallMs:   entry.WallMs,
				FedWallMs:    float64(fwall) / float64(time.Millisecond),
				OverheadFrac: fwall.Seconds()/wall.Seconds() - 1,
				APKs:         fres.Funnel.Filtered,
				StageLatency: coord.Fleet().StageQuantiles(),
			}
			fleetDoc.Entries = append(fleetDoc.Entries, fe)
			if fe.OverheadFrac > fleetDoc.MaxOverheadFrac {
				fleetDoc.MaxOverheadFrac = fe.OverheadFrac
			}
			fleetDoc.MergeIdentical = fleetDoc.MergeIdentical &&
				fres.Funnel == seqRes.Funnel && renderReport(o, fres) == seqTables
			fmt.Fprintf(os.Stderr, "bench: %d shards federated → %.1f APKs/s (overhead %+.1f%%)\n",
				n, float64(fe.APKs)/fwall.Seconds(), 100*fe.OverheadFrac)
			if q, ok := fe.StageLatency["analyze"]; ok {
				fmt.Fprintf(os.Stderr, "bench: analyze latency p50 %.3fs p95 %.3fs p99 %.3fs\n",
					q.P50, q.P95, q.P99)
			}
		}
	}
	doc.MergeIdentical = lastMerged != nil &&
		lastMerged.Funnel == seqRes.Funnel &&
		renderReport(o, lastMerged) == seqTables
	if !doc.MergeIdentical {
		fmt.Fprintln(os.Stderr, "WARNING: merged report diverged from the sequential run")
	}

	path := so.benchOut
	if path == "" {
		path = "BENCH_shard.json"
	}
	if err := writeBenchJSON(path, doc); err != nil {
		return err
	}
	if so.federation {
		fpath := so.fleetBenchOut
		if fpath == "" {
			fpath = "BENCH_fleet.json"
		}
		if err := writeBenchJSON(fpath, fleetDoc); err != nil {
			return err
		}
	}
	return nil
}

// writeBenchJSON writes one benchmark document, indented.
func writeBenchJSON(path string, doc any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// sequentialReference runs the plain single-process pipeline over the same
// served corpus. Modeled download latency is deliberately left out —
// latency shifts wall time, never results — so this is purely the identity
// reference, not the timing baseline (the 1-shard bench entry is that).
func sequentialReference(o options, plane *corpusPlane) (*pipeline.Result, error) {
	cfg := pipeline.Config{
		MinDownloads: corpus.MinDownloads,
		UpdatedAfter: corpus.UpdateCutoff,
	}
	if o.lint || o.lintRules != nil {
		lint, err := webviewlint.New(webviewlint.Config{Rules: o.lintRules})
		if err != nil {
			return nil, err
		}
		cfg.Lint = lint
	}
	if o.urls {
		cfg.URLs = urlextract.New(urlextract.Config{})
	}
	repo := androzoo.NewClient("http://"+plane.az.Addr, nil)
	meta := playstore.NewClient("http://"+plane.ps.Addr, nil)
	return pipeline.New(repo, meta, cfg).Run(context.Background())
}

// renderReport renders the full static report to a string — the
// byte-identity surface for the merge assert.
func renderReport(o options, res *pipeline.Result) string {
	var sb strings.Builder
	printStaticReport(&sb, o, staticResult(res))
	return sb.String()
}

// printStaticReport renders the standard static-study tables for a
// result — shared by the sequential and the merged sharded paths.
func printStaticReport(out io.Writer, o options, res *core.StaticResult) {
	fmt.Fprint(out, report.Table2(res.Funnel, o.scale))
	fmt.Fprint(out, report.Table3(res.Aggregates))
	fmt.Fprint(out, report.TopSDKTable(res.Aggregates, false, o.scale))
	fmt.Fprint(out, report.TopSDKTable(res.Aggregates, true, o.scale))
	fmt.Fprint(out, report.Table7(res.Aggregates, o.scale))
	fmt.Fprint(out, report.Figure3(res.Aggregates))
	fmt.Fprint(out, report.Figure4(res.Aggregates))
	if o.lint {
		fmt.Fprint(out, report.LintTable(res.Aggregates))
	}
	if o.urls {
		fmt.Fprint(out, report.URLTable(res.Apps))
	}
}
