// End-to-end test of the sharded scan plane at the binary surface: the
// coordinator runs in this process and its workers are separate OS
// processes — this same test binary re-executed in worker mode — joined
// over real HTTP. The merged report must be byte-identical to the
// sequential single-process run.
package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestMain turns the test binary into a staticscan worker when the guard
// variable is set: spawnWorkers exec's os.Executable(), which under `go
// test` is this binary. Dispatching before m.Run keeps the testing
// machinery (and its flag registration) out of the worker's way.
func TestMain(m *testing.M) {
	if os.Getenv(workerEnvGuard) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestCoordinatorSpawnsWorkerProcesses is the tentpole at the CLI surface:
// a coordinator over four shards with two spawned worker OS processes,
// merged report byte-identical to the sequential run — lint and
// urlextract tables included.
func TestCoordinatorSpawnsWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes; skipped in -short")
	}
	o := options{scale: 2500, seed: 1, lint: true, urls: true}
	plane, err := startCorpusPlane(o)
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	seq, err := sequentialReference(o, plane)
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	want := renderReport(o, seq)

	so := shardOptions{
		ttl:        time.Minute,
		journalDir: t.TempDir(),
		federation: true,
	}
	res, _, coord, err := shardedScan(o, so, plane, 4, 2, 0)
	if err != nil {
		t.Fatalf("sharded scan: %v", err)
	}
	got := renderReport(o, res)
	if got != want {
		t.Fatalf("merged report diverged from sequential run:\n--- merged ---\n%s\n--- sequential ---\n%s", got, want)
	}
	if !strings.Contains(got, "Table 3") {
		t.Fatalf("report missing expected sections:\n%s", got)
	}
	// The spawned OS-process workers federated real registry deltas: the
	// fleet rollup must account for every analysed APK.
	counts := coord.Fleet().RollupCounts()
	if counts.APKs != int64(res.Funnel.Filtered) {
		t.Fatalf("fleet rollup counted %d APKs, merged report has %d", counts.APKs, res.Funnel.Filtered)
	}
}

// TestWorkerModeNeedsJoin covers the flag contract.
func TestWorkerModeNeedsJoin(t *testing.T) {
	if err := runWorker(options{}, shardOptions{worker: true}); err == nil {
		t.Fatal("worker mode without -join succeeded")
	}
}

// TestCoordinatorModeNeedsShards covers the flag contract.
func TestCoordinatorModeNeedsShards(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := runCoordinator(devnull, options{scale: 2500, seed: 1}, shardOptions{coordinator: "127.0.0.1:0"}); err == nil {
		t.Fatal("coordinator mode without -shards succeeded")
	}
}
