// The -fleet-status subcommand: point it at a running coordinator and it
// renders the live fleet status — partition lease states, per-shard and
// fleet-wide throughput, stage-latency quantiles, worker staleness — the
// operator view of a sharded scan in flight.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/telemetry/fleet"
)

// fleetStatusURL normalises what the operator typed — a bare coordinator
// base URL or the full endpoint — into the /fleet/status URL.
func fleetStatusURL(arg string) string {
	u := strings.TrimRight(arg, "/")
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		u = "http://" + u
	}
	if !strings.HasSuffix(u, "/fleet/status") {
		u += "/fleet/status"
	}
	return u
}

// runFleetStatus fetches a coordinator's status document and renders it.
func runFleetStatus(out io.Writer, arg string) error {
	url := fleetStatusURL(arg)
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(url)
	if err != nil {
		return fmt.Errorf("fleet-status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet-status: %s answered %d (is the coordinator running with federation enabled?)", url, resp.StatusCode)
	}
	var doc fleet.StatusDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&doc); err != nil {
		return fmt.Errorf("fleet-status: decode %s: %w", url, err)
	}
	return fleet.RenderStatus(out, &doc)
}
