package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestLintJSONGolden runs the full staticscan path with -lint-json over a
// small fixed corpus and compares the machine-readable findings document
// byte-for-byte against the checked-in golden file: the lint output is part
// of the tool's contract and must stay deterministic across refactors.
// Regenerate with: go test ./cmd/staticscan -run TestLintJSONGolden -update
func TestLintJSONGolden(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "lint.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	o := options{scale: 5000, seed: 1, workers: 2, lint: true, lintJSON: jsonPath}
	if err := run(devnull, o); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "lint_scale5000_seed1.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("lint JSON drifted from golden file %s\ngot:\n%s", golden, got)
	}

	// Sanity beyond byte equality: the document decodes and carries the
	// full rule registry plus at least one flagged app.
	var doc lintReport
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("golden output is not valid JSON: %v", err)
	}
	if len(doc.Rules) < 8 {
		t.Errorf("document lists %d rules, want the full registry (>=8)", len(doc.Rules))
	}
	if len(doc.Apps) == 0 {
		t.Error("document flags no apps over the seeded corpus")
	}
}

// TestURLJSONGolden pins the -urls-json document the same way: the static
// endpoint extraction is part of the tool's contract and must stay
// byte-deterministic across refactors of the dataflow engine.
// Regenerate with: go test ./cmd/staticscan -run TestURLJSONGolden -update
func TestURLJSONGolden(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "urls.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	o := options{scale: 5000, seed: 1, workers: 2, urls: true, urlsJSON: jsonPath}
	if err := run(devnull, o); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "urls_scale5000_seed1.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("URL JSON drifted from golden file %s\ngot:\n%s", golden, got)
	}

	var doc urlReport
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("golden output is not valid JSON: %v", err)
	}
	if doc.Endpoints == 0 || len(doc.AppURLs) == 0 {
		t.Errorf("document carries no endpoints over the seeded corpus: %+v", doc)
	}
	if doc.Kinds["full"] == 0 {
		t.Errorf("no fully-resolved endpoint in the document: kinds = %v", doc.Kinds)
	}
}

// TestURLJSONWorkerIndependent pins the concurrency contract stated in the
// package doc: the -urls-json document is byte-identical no matter how
// many pipeline workers raced to produce it.
func TestURLJSONWorkerIndependent(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	docs := make([][]byte, 0, 2)
	for _, workers := range []int{1, 4} {
		jsonPath := filepath.Join(t.TempDir(), "urls.json")
		o := options{scale: 5000, seed: 1, workers: workers, urls: true, urlsJSON: jsonPath}
		if err := run(devnull, o); err != nil {
			t.Fatalf("run (workers=%d): %v", workers, err)
		}
		got, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, got)
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Errorf("URL JSON differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			docs[0], docs[1])
	}
}
