package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestLintJSONGolden runs the full staticscan path with -lint-json over a
// small fixed corpus and compares the machine-readable findings document
// byte-for-byte against the checked-in golden file: the lint output is part
// of the tool's contract and must stay deterministic across refactors.
// Regenerate with: go test ./cmd/staticscan -run TestLintJSONGolden -update
func TestLintJSONGolden(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "lint.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	o := options{scale: 5000, seed: 1, workers: 2, lint: true, lintJSON: jsonPath}
	if err := run(devnull, o); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "lint_scale5000_seed1.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("lint JSON drifted from golden file %s\ngot:\n%s", golden, got)
	}

	// Sanity beyond byte equality: the document decodes and carries the
	// full rule registry plus at least one flagged app.
	var doc lintReport
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("golden output is not valid JSON: %v", err)
	}
	if len(doc.Rules) < 8 {
		t.Errorf("document lists %d rules, want the full registry (>=8)", len(doc.Rules))
	}
	if len(doc.Apps) == 0 {
		t.Error("document flags no apps over the seeded corpus")
	}
}
