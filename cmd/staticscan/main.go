// Command staticscan runs the paper's full static-analysis pipeline
// (Figure 1) over a synthetic corpus served by in-process AndroZoo and
// Play Store services, then prints the static-study tables and figures:
// Table 2 (dataset funnel), Table 3 (SDK matrix), Tables 4/5 (popular
// SDKs), Table 7 (API-method usage), Figure 3 (use cases per app
// category) and Figure 4 (method heatmap).
//
// Usage:
//
//	staticscan [-scale N] [-seed N] [-workers N]
//
// Scale divides the paper's 6.5M-app population; scale 1 reproduces
// full-paper counts (slow and memory-hungry), the default 200 finishes in
// seconds with the same shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/androzoo"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/playstore"
	"repro/internal/report"
)

func main() {
	scale := flag.Int("scale", 200, "population divisor (1 = paper scale)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	workers := flag.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*scale, *seed, *workers); err != nil {
		log.Fatal(err)
	}
}

func run(scale int, seed int64, workers int) error {
	fmt.Fprintf(os.Stderr, "generating corpus (seed=%d scale=1/%d)...\n", seed, scale)
	c, err := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}

	azSrv := httptest.NewServer(androzoo.NewServer(c).Handler())
	defer azSrv.Close()
	psSrv := httptest.NewServer(playstore.NewServer(c).Handler())
	defer psSrv.Close()

	study := core.NewStaticStudy(
		androzoo.NewClient(azSrv.URL, azSrv.Client()),
		playstore.NewClient(psSrv.URL, psSrv.Client()),
		core.StaticConfig{Workers: workers},
	)
	fmt.Fprintf(os.Stderr, "running pipeline over %d repository entries...\n", c.Counts.Total)
	res, err := study.Run(context.Background())
	if err != nil {
		return err
	}

	fmt.Print(report.Table2(res.Funnel, scale))
	fmt.Print(report.Table3(res.Aggregates))
	fmt.Print(report.TopSDKTable(res.Aggregates, false, scale))
	fmt.Print(report.TopSDKTable(res.Aggregates, true, scale))
	fmt.Print(report.Table7(res.Aggregates, scale))
	fmt.Print(report.Figure3(res.Aggregates))
	fmt.Print(report.Figure4(res.Aggregates))
	return nil
}
