// Command staticscan runs the paper's full static-analysis pipeline
// (Figure 1) over a synthetic corpus served by in-process AndroZoo and
// Play Store services, then prints the static-study tables and figures:
// Table 2 (dataset funnel), Table 3 (SDK matrix), Tables 4/5 (popular
// SDKs), Table 7 (API-method usage), Figure 3 (use cases per app
// category) and Figure 4 (method heatmap).
//
// Usage:
//
//	staticscan [-scale N] [-seed N] [-workers N] [-cachedir DIR] [-stats]
//	           [-lint] [-lint-rules LIST] [-lint-json FILE]
//	           [-urls] [-urls-json FILE]
//	           [-retries N] [-max-failure-frac F] [-faults SPEC]
//	           [-journal FILE] [-resume]
//	           [-cpuprofile FILE] [-memprofile FILE]
//	           [-telemetry-addr ADDR] [-metrics-out FILE] [-trace-out FILE]
//	           [-telemetry-wallclock]
//	           [-fleet-federation] [-fleet-status URL]
//	           [-fleet-metrics-out FILE] [-fleet-trace-out FILE]
//
// Scale divides the paper's 6.5M-app population; scale 1 reproduces
// full-paper counts (slow and memory-hungry), the default 200 finishes in
// seconds with the same shapes.
//
// With -cachedir, per-APK analyses are cached on disk keyed by APK content
// digest: a re-run over an unchanged corpus downloads each APK but skips
// its decompile/parse/callgraph work entirely (the stats line reports the
// hit rate). Edit the SDK catalog or the corpus and the affected entries
// miss and recompute. -stats prints the per-stage pipeline summary to
// stderr.
//
// -lint adds the WebView misconfiguration lint stage and prints the
// per-rule prevalence table. -lint-rules runs only the named
// comma-separated rule IDs (implies -lint); -lint-json writes the findings
// machine-readably to FILE ("-" for stdout, implies -lint). The lint
// configuration is part of the cache key, so toggling rules invalidates
// only lint-bearing cache entries.
//
// -urls adds the interprocedural URL-extraction stage and prints the
// static-endpoint summary table; -urls-json writes the per-app endpoints
// machine-readably to FILE ("-" for stdout, implies -urls). The extractor
// fingerprint joins the cache key, so toggling the stage or changing the
// engine re-extracts instead of serving stale entries; the JSON document
// is byte-identical across -workers settings.
//
// Fault tolerance: -retries N retries each network operation up to N
// extra times with exponential backoff; -max-failure-frac F lets up to
// that fraction of the snapshot be quarantined (after retries) without
// aborting the run, with casualties summarised on stderr. -journal FILE
// checkpoints completed packages as JSONL; re-running with -resume skips
// them, so an interrupted corpus run picks up where it died. -faults
// injects deterministic failures for testing the above, e.g.
// "seed=7,err=0.1,lat=1ms,latrate=0.05,trunc=0.02,corrupt=0.02":
// err/latrate perturb the repository and metadata interfaces, trunc and
// corrupt damage HTTP payloads beneath the client's integrity checks,
// and err/corrupt also harass the persistent cache tier.
//
// Observability: -telemetry-addr serves /metrics (Prometheus text),
// /metrics.json, /healthz, /trace and /debug/pprof live during the run;
// -metrics-out and -trace-out write the final snapshot and the per-APK
// span traces on exit ("-" for stdout). Durations are seed-derived by
// default so same-seed runs emit byte-identical telemetry; pass
// -telemetry-wallclock for real latencies.
//
// Fleet observability (shard modes, on by default via -fleet-federation):
// the coordinator federates every worker's metrics registry and per-APK
// trace spans behind /fleet/metrics, /fleet/metrics.json, /fleet/status
// and /fleet/trace; `staticscan -fleet-status URL` renders the live status
// from another terminal. -fleet-metrics-out and -fleet-trace-out write the
// federated exposition and the stitched fleet trace when the sharded scan
// ends.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/androzoo"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/playstore"
	"repro/internal/profiling"
	"repro/internal/resultcache"
	"repro/internal/retry"
	"repro/internal/telemetry"
	"repro/internal/urlextract"
	"repro/internal/webviewlint"
)

func main() {
	scale := flag.Int("scale", 200, "population divisor (1 = paper scale)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	workers := flag.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
	cachedir := flag.String("cachedir", "", "persistent analysis-cache directory (empty = no cache)")
	stats := flag.Bool("stats", false, "print per-stage pipeline statistics to stderr")
	lint := flag.Bool("lint", false, "run the WebView misconfiguration lint stage")
	lintRules := flag.String("lint-rules", "", "comma-separated lint rule IDs (implies -lint; empty = all rules)")
	lintJSON := flag.String("lint-json", "", "write lint findings as JSON to this file, \"-\" for stdout (implies -lint)")
	urls := flag.Bool("urls", false, "run the interprocedural URL-extraction stage")
	urlsJSON := flag.String("urls-json", "", "write extracted endpoints as JSON to this file, \"-\" for stdout (implies -urls)")
	retries := flag.Int("retries", 3, "extra attempts per failed network operation (0 = no retry)")
	maxFailureFrac := flag.Float64("max-failure-frac", 0, "fraction of packages that may fail without aborting the run")
	faultsSpec := flag.String("faults", "", "inject deterministic faults, e.g. \"seed=7,err=0.1,lat=1ms\" (testing)")
	journalPath := flag.String("journal", "", "checkpoint completed packages to this JSONL file")
	resume := flag.Bool("resume", false, "resume from an existing -journal file instead of refusing to overwrite it")
	coordinator := flag.String("coordinator", "", "run as scan-plane coordinator on this listen address (\":0\" for ephemeral)")
	shards := flag.Int("shards", 0, "partition count for -coordinator mode")
	shardSpawn := flag.Int("shard-spawn", -1, "worker processes the coordinator spawns (-1 = one per shard, 0 = external workers)")
	workerMode := flag.Bool("worker", false, "run as scan-plane worker (requires -join)")
	join := flag.String("join", "", "coordinator URL to join in -worker mode")
	shardTTL := flag.Duration("shard-ttl", 0, "work-lease TTL (0 = coordinator default)")
	dlLatency := flag.Duration("dl-latency", 0, "modeled per-APK repository transfer time in shard modes")
	journalDir := flag.String("journal-dir", "", "per-partition journal directory in shard modes")
	shardBench := flag.String("shard-bench", "", "benchmark APKs/s at these shard counts, e.g. \"1,4,8\"")
	benchOut := flag.String("bench-out", "", "benchmark JSON output path (default BENCH_shard.json)")
	federation := flag.Bool("fleet-federation", true, "enable the fleet observability plane (/fleet/*) in shard modes")
	fleetStatus := flag.String("fleet-status", "", "render a running coordinator's /fleet/status and exit (coordinator URL)")
	fleetMetricsOut := flag.String("fleet-metrics-out", "", "write the federated /fleet/metrics exposition to this file when the sharded scan ends (\"-\" for stdout)")
	fleetTraceOut := flag.String("fleet-trace-out", "", "write the stitched fleet-wide per-APK trace JSONL to this file when the sharded scan ends (\"-\" for stdout)")
	fleetBenchOut := flag.String("fleet-bench-out", "", "federation-overhead benchmark JSON path in -shard-bench mode (default BENCH_fleet.json)")
	var prof profiling.Flags
	prof.Register(nil)
	var telem telemetry.Flags
	telem.Register(nil)
	flag.Parse()
	if *workerMode && *join != "" {
		// One shard's local trace is partial and misleading: the debug
		// server's /trace points at the coordinator's stitched export.
		telem.FleetTraceURL = strings.TrimRight(*join, "/") + "/fleet/trace"
	}
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			log.Fatal(err)
		}
	}()
	hub := telem.Hub(*seed)
	if err := telem.Start(); err != nil {
		log.Fatal(err)
	}

	opts := options{
		scale: *scale, seed: *seed, workers: *workers,
		cachedir: *cachedir, stats: *stats,
		lint:     *lint || *lintRules != "" || *lintJSON != "",
		lintJSON: *lintJSON,
		urls:     *urls || *urlsJSON != "",
		urlsJSON: *urlsJSON,
		retries:  *retries, maxFailureFrac: *maxFailureFrac,
		faults: *faultsSpec, journal: *journalPath, resume: *resume,
		telemetry: hub, wallclock: telem.Wallclock,
	}
	if *lintRules != "" {
		opts.lintRules = strings.Split(*lintRules, ",")
	}
	sopts := shardOptions{
		coordinator: *coordinator, shards: *shards, spawn: *shardSpawn,
		worker: *workerMode, join: *join,
		ttl: *shardTTL, dlLatency: *dlLatency, journalDir: *journalDir,
		bench: *shardBench, benchOut: *benchOut,
		federation: *federation, fleetMetricsOut: *fleetMetricsOut,
		fleetTraceOut: *fleetTraceOut, fleetBenchOut: *fleetBenchOut,
	}
	var err error
	switch {
	case *fleetStatus != "":
		err = runFleetStatus(os.Stdout, *fleetStatus)
	case sopts.worker:
		err = runWorker(opts, sopts)
	case sopts.bench != "":
		err = runShardBench(opts, sopts)
	case sopts.coordinator != "":
		err = runCoordinator(os.Stdout, opts, sopts)
	default:
		err = run(os.Stdout, opts)
	}
	if terr := telem.Finish(); err == nil {
		err = terr
	}
	if err != nil {
		log.Fatal(err)
	}
}

type options struct {
	scale          int
	seed           int64
	workers        int
	cachedir       string
	stats          bool
	lint           bool
	lintRules      []string
	lintJSON       string
	urls           bool
	urlsJSON       string
	retries        int
	maxFailureFrac float64
	faults         string
	journal        string
	resume         bool
	telemetry      *telemetry.Hub
	wallclock      bool
}

// lintReport is the machine-readable -lint-json document.
type lintReport struct {
	Scale int               `json:"scale"`
	Seed  int64             `json:"seed"`
	Rules []lintRuleSummary `json:"rules"`
	Apps  []lintAppFindings `json:"apps"`
}

type lintRuleSummary struct {
	ID       string `json:"id"`
	Severity string `json:"severity"`
	Findings int    `json:"findings"`
	Apps     int    `json:"apps"`
	ViaSDK   int    `json:"viaSdk"`
}

type lintAppFindings struct {
	Package  string                `json:"package"`
	Findings []webviewlint.Finding `json:"findings"`
}

// urlReport is the machine-readable -urls-json document.
type urlReport struct {
	Scale     int               `json:"scale"`
	Seed      int64             `json:"seed"`
	Apps      int               `json:"apps"` // apps with at least one endpoint
	Endpoints int               `json:"endpoints"`
	Kinds     map[string]int    `json:"kinds"`
	AppURLs   []urlAppEndpoints `json:"appEndpoints"`
}

type urlAppEndpoints struct {
	Package   string                `json:"package"`
	Endpoints []urlextract.Endpoint `json:"endpoints"`
}

func run(out *os.File, o options) error {
	fmt.Fprintf(os.Stderr, "generating corpus (seed=%d scale=1/%d)...\n", o.seed, o.scale)
	c, err := corpus.Generate(corpus.Config{Seed: o.seed, Scale: o.scale})
	if err != nil {
		return err
	}

	azSrv := httptest.NewServer(androzoo.NewServer(c).Handler())
	defer azSrv.Close()
	psSrv := httptest.NewServer(playstore.NewServer(c).Handler())
	defer psSrv.Close()

	fcfg, err := faults.ParseSpec(o.faults)
	if err != nil {
		return err
	}
	injecting := o.faults != ""

	cfg := core.StaticConfig{
		Workers: o.workers, Lint: o.lint, LintRules: o.lintRules, URLs: o.urls,
		MaxFailureFrac: o.maxFailureFrac, Telemetry: o.telemetry,
	}
	if o.retries > 0 {
		cfg.Retry = &retry.Policy{MaxAttempts: o.retries + 1, Metrics: &retry.Metrics{}}
	}
	if o.cachedir != "" {
		store, err := resultcache.NewDirStore(o.cachedir)
		if err != nil {
			return fmt.Errorf("open cache dir: %w", err)
		}
		var blobs resultcache.BlobStore = store
		if injecting {
			// The cache tier sees load errors and blob corruption; the
			// cache's purge-on-corrupt path turns both into recomputes.
			blobs = faults.NewStore(store, faults.Config{
				Seed: fcfg.Seed, ErrorRate: fcfg.ErrorRate, CorruptRate: fcfg.CorruptRate,
				Telemetry: o.telemetry,
			})
		}
		cfg.Cache = resultcache.NewPersistent[pipeline.Analysis](0, blobs, nil)
	}
	if o.journal != "" {
		if !o.resume {
			if _, err := os.Stat(o.journal); err == nil {
				return fmt.Errorf("journal %s exists; pass -resume to continue it or remove it first", o.journal)
			}
		}
		j, err := pipeline.OpenJournal(o.journal)
		if err != nil {
			return err
		}
		defer j.Close()
		if n := j.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d packages already journaled\n", n)
		}
		cfg.Journal = j
	}

	// Payload damage (truncation, corruption) rides beneath the APK
	// client's Content-Length/digest verification, which detects it and
	// retries; interface-level errors and latency wrap the services and
	// are retried by the pipeline.
	azHC := azSrv.Client()
	if injecting && (fcfg.TruncateRate > 0 || fcfg.CorruptRate > 0) {
		azHC = &http.Client{Transport: faults.NewTransport(azHC.Transport, faults.Config{
			Seed: fcfg.Seed, TruncateRate: fcfg.TruncateRate, CorruptRate: fcfg.CorruptRate,
			Telemetry: o.telemetry,
		})}
	}
	var repo pipeline.Repository = androzoo.NewClient(azSrv.URL, azHC).WithRetry(cfg.Retry)
	var meta pipeline.MetadataSource = playstore.NewClient(psSrv.URL, psSrv.Client()).WithRetry(cfg.Retry)
	if injecting && (fcfg.ErrorRate > 0 || fcfg.LatencyRate > 0) {
		svcCfg := faults.Config{
			Seed: fcfg.Seed, ErrorRate: fcfg.ErrorRate,
			LatencyRate: fcfg.LatencyRate, Latency: fcfg.Latency,
			Telemetry: o.telemetry,
		}
		repo = faults.NewRepository(repo, svcCfg)
		meta = faults.NewMetadataSource(meta, svcCfg)
	}

	study, err := core.NewStaticStudy(repo, meta, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "running pipeline over %d repository entries...\n", c.Counts.Total)
	res, err := study.Run(context.Background())
	if err != nil {
		return err
	}
	if o.cachedir != "" {
		fmt.Fprintf(os.Stderr, "analysis cache: %d hits, %d misses (%.0f%% hit rate)\n",
			res.Stats.CacheHits, res.Stats.CacheMisses, 100*res.Stats.CacheHitRate())
	}
	if n := len(res.Quarantined); n > 0 {
		fmt.Fprintf(os.Stderr, "degraded: %d of %d packages quarantined after retries (budget %.1f%%):\n",
			n, res.Funnel.Snapshot, 100*o.maxFailureFrac)
		for i, q := range res.Quarantined {
			if i == 10 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", n-i)
				break
			}
			fmt.Fprintf(os.Stderr, "  %s (%s): %s\n", q.Package, q.Stage, q.Err)
		}
	}
	if o.stats {
		fmt.Fprintln(os.Stderr, res.Stats.String())
	}

	printStaticReport(out, o, res)
	if o.lintJSON != "" {
		if err := writeJSON(out, o.lintJSON, buildLintReport(o, res)); err != nil {
			return err
		}
	}
	if o.urlsJSON != "" {
		if err := writeJSON(out, o.urlsJSON, buildURLReport(o, res)); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON writes doc indented to path, or to out when path is "-".
func writeJSON(out *os.File, path string, doc any) error {
	w := out
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// buildLintReport assembles the deterministic JSON document: rules in
// registry order, apps in package order (the pipeline already sorts them),
// findings in the analyzer's (class, line, rule) order.
func buildLintReport(o options, res *core.StaticResult) *lintReport {
	doc := &lintReport{Scale: o.scale, Seed: o.seed}
	for _, r := range webviewlint.Rules() {
		doc.Rules = append(doc.Rules, lintRuleSummary{
			ID:       r.ID,
			Severity: string(r.Severity),
			Findings: res.Aggregates.LintRuleFindings[r.ID],
			Apps:     res.Aggregates.LintRuleApps[r.ID],
			ViaSDK:   res.Aggregates.LintRuleViaSDK[r.ID],
		})
	}
	for i := range res.Apps {
		app := &res.Apps[i]
		if len(app.Lint) == 0 {
			continue
		}
		doc.Apps = append(doc.Apps, lintAppFindings{Package: app.Package, Findings: app.Lint})
	}
	return doc
}

// buildURLReport assembles the deterministic -urls-json document: apps in
// package order (the pipeline already sorts them), endpoints in the
// extractor's (class, method, API, URL) order.
func buildURLReport(o options, res *core.StaticResult) *urlReport {
	doc := &urlReport{Scale: o.scale, Seed: o.seed, Kinds: map[string]int{
		urlextract.KindFull: 0, urlextract.KindPrefix: 0, urlextract.KindDynamic: 0,
	}}
	for i := range res.Apps {
		app := &res.Apps[i]
		if len(app.Endpoints) == 0 {
			continue
		}
		doc.Apps++
		doc.Endpoints += len(app.Endpoints)
		for _, ep := range app.Endpoints {
			doc.Kinds[ep.Kind]++
		}
		doc.AppURLs = append(doc.AppURLs, urlAppEndpoints{Package: app.Package, Endpoints: app.Endpoints})
	}
	return doc
}
