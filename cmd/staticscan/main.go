// Command staticscan runs the paper's full static-analysis pipeline
// (Figure 1) over a synthetic corpus served by in-process AndroZoo and
// Play Store services, then prints the static-study tables and figures:
// Table 2 (dataset funnel), Table 3 (SDK matrix), Tables 4/5 (popular
// SDKs), Table 7 (API-method usage), Figure 3 (use cases per app
// category) and Figure 4 (method heatmap).
//
// Usage:
//
//	staticscan [-scale N] [-seed N] [-workers N] [-cachedir DIR] [-stats]
//
// Scale divides the paper's 6.5M-app population; scale 1 reproduces
// full-paper counts (slow and memory-hungry), the default 200 finishes in
// seconds with the same shapes.
//
// With -cachedir, per-APK analyses are cached on disk keyed by APK content
// digest: a re-run over an unchanged corpus downloads each APK but skips
// its decompile/parse/callgraph work entirely (the stats line reports the
// hit rate). Edit the SDK catalog or the corpus and the affected entries
// miss and recompute. -stats prints the per-stage pipeline summary to
// stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/androzoo"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/pipeline"
	"repro/internal/playstore"
	"repro/internal/report"
	"repro/internal/resultcache"
)

func main() {
	scale := flag.Int("scale", 200, "population divisor (1 = paper scale)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	workers := flag.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
	cachedir := flag.String("cachedir", "", "persistent analysis-cache directory (empty = no cache)")
	stats := flag.Bool("stats", false, "print per-stage pipeline statistics to stderr")
	flag.Parse()

	if err := run(*scale, *seed, *workers, *cachedir, *stats); err != nil {
		log.Fatal(err)
	}
}

func run(scale int, seed int64, workers int, cachedir string, stats bool) error {
	fmt.Fprintf(os.Stderr, "generating corpus (seed=%d scale=1/%d)...\n", seed, scale)
	c, err := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}

	azSrv := httptest.NewServer(androzoo.NewServer(c).Handler())
	defer azSrv.Close()
	psSrv := httptest.NewServer(playstore.NewServer(c).Handler())
	defer psSrv.Close()

	cfg := core.StaticConfig{Workers: workers}
	if cachedir != "" {
		store, err := resultcache.NewDirStore(cachedir)
		if err != nil {
			return fmt.Errorf("open cache dir: %w", err)
		}
		cfg.Cache = resultcache.NewPersistent[pipeline.Analysis](0, store, nil)
	}
	study := core.NewStaticStudy(
		androzoo.NewClient(azSrv.URL, azSrv.Client()),
		playstore.NewClient(psSrv.URL, psSrv.Client()),
		cfg,
	)
	fmt.Fprintf(os.Stderr, "running pipeline over %d repository entries...\n", c.Counts.Total)
	res, err := study.Run(context.Background())
	if err != nil {
		return err
	}
	if cachedir != "" {
		fmt.Fprintf(os.Stderr, "analysis cache: %d hits, %d misses (%.0f%% hit rate)\n",
			res.Stats.CacheHits, res.Stats.CacheMisses, 100*res.Stats.CacheHitRate())
	}
	if stats {
		fmt.Fprintln(os.Stderr, res.Stats.String())
	}

	fmt.Print(report.Table2(res.Funnel, scale))
	fmt.Print(report.Table3(res.Aggregates))
	fmt.Print(report.TopSDKTable(res.Aggregates, false, scale))
	fmt.Print(report.TopSDKTable(res.Aggregates, true, scale))
	fmt.Print(report.Table7(res.Aggregates, scale))
	fmt.Print(report.Figure3(res.Aggregates))
	fmt.Print(report.Figure4(res.Aggregates))
	return nil
}
