// Command apkdump inspects a single APK the way the pipeline's first
// stages do: it prints the manifest summary, the sdex disassembly or the
// decompiled Java source, the call-graph entry points and the detected
// WebView / Custom Tabs usage.
//
// Usage:
//
//	apkdump -pkg com.genapp0001012 [-scale N] [-seed N] <mode>
//	        [-cpuprofile FILE] [-memprofile FILE]
//	        [-telemetry-addr ADDR] [-metrics-out FILE] [-trace-out FILE]
//
// where mode is one of: manifest, disasm, java, usage (default: usage).
// The APK is drawn from the synthetic corpus; point -pkg at any generated
// package (use `corpusgen` to list them) or a named app such as
// com.facebook.katana.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/corpus"
	"repro/internal/dalvik"
	"repro/internal/decompiler"
	"repro/internal/profiling"
	"repro/internal/sdkindex"
	"repro/internal/telemetry"
)

func main() {
	pkg := flag.String("pkg", "com.facebook.katana", "package to dump")
	scale := flag.Int("scale", 200, "corpus scale")
	seed := flag.Int64("seed", 1, "corpus seed")
	var prof profiling.Flags
	prof.Register(nil)
	var telem telemetry.Flags
	telem.Register(nil)
	flag.Parse()
	mode := flag.Arg(0)
	if mode == "" {
		mode = "usage"
	}
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	telem.Hub(*seed)
	if err := telem.Start(); err != nil {
		log.Fatal(err)
	}
	err := run(*pkg, *scale, *seed, mode)
	if terr := telem.Finish(); err == nil {
		err = terr
	}
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		log.Fatal(err)
	}
}

func run(pkg string, scale int, seed int64, mode string) error {
	c, err := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}
	spec := c.AppByPackage(pkg)
	if spec == nil {
		return fmt.Errorf("package %q not in the corpus (scale %d)", pkg, scale)
	}
	img, err := corpus.BuildAPK(spec)
	if err != nil {
		return err
	}
	a, err := apk.Open(img)
	if err != nil {
		return err
	}

	switch mode {
	case "manifest":
		fmt.Printf("package:     %s\n", a.Manifest.Package)
		fmt.Printf("versionCode: %d (%s)\n", a.Manifest.VersionCode, a.Manifest.VersionName)
		fmt.Printf("sdk:         min %d, target %d\n", a.Manifest.MinSDK, a.Manifest.TargetSDK)
		for _, comp := range a.Manifest.Components {
			exported := ""
			if comp.Exported {
				exported = " exported"
			}
			fmt.Printf("  %-9s %s%s\n", comp.Kind, comp.Name, exported)
			for _, f := range comp.Filters {
				fmt.Printf("            actions=%v categories=%v data=%v\n", f.Actions, f.Categories, f.Data)
			}
		}
		if dls := a.Manifest.DeepLinkActivities(); len(dls) > 0 {
			fmt.Printf("deep-link activities (excluded from third-party attribution): %v\n", dls)
		}
	case "disasm":
		fmt.Print(dalvik.Disassemble(a.Dex))
	case "java":
		for _, unit := range decompiler.Decompile(a.Dex) {
			fmt.Printf("// ===== %s =====\n%s\n", unit.Path, unit.Source)
		}
	case "usage":
		g := callgraph.Build(a.Dex)
		fmt.Printf("package: %s  (%d classes, %d methods)\n", a.Package(), len(a.Dex.Classes), a.Dex.MethodCount())
		eps := g.EntryPoints()
		fmt.Printf("entry points (%d):\n", len(eps))
		for _, ep := range eps {
			fmt.Printf("  %s.%s\n", ep.Class, ep.Name)
		}
		excl := map[string]bool{}
		for _, dl := range a.Manifest.DeepLinkActivities() {
			excl[dl] = true
		}
		usage := g.AnalyzeUsage(excl)
		fmt.Printf("\nuses WebView: %v   uses Custom Tabs: %v\n", usage.UsesWebView(), usage.UsesCT())
		if subs := usage.WebViewSubclasses; len(subs) > 0 {
			fmt.Printf("custom WebView subclasses: %v\n", subs)
		}
		idx := sdkindex.Default()
		for _, call := range usage.WebViewCalls {
			label := "first-party"
			if sdk, ok := idx.Lookup(call.CallerPackage()); ok {
				label = fmt.Sprintf("%s SDK: %s", sdk.Category, sdk.Name)
			}
			fmt.Printf("  WV  %-48s %-26s [%s] url=%s\n", call.Caller, call.Target.Name, label, call.URLHint)
		}
		for _, call := range usage.CTCalls {
			label := "first-party"
			if sdk, ok := idx.Lookup(call.CallerPackage()); ok {
				label = fmt.Sprintf("%s SDK: %s", sdk.Category, sdk.Name)
			}
			fmt.Printf("  CT  %-48s %-26s [%s]\n", call.Caller, call.Target.Name, label)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (manifest|disasm|java|usage)\n", mode)
		os.Exit(2)
	}
	return nil
}
