// Command loadtime prints the Figure 7 page-load-time comparison: the same
// page rendered in a Custom Tab (pre-warmed, speculatively loaded), in
// Chrome, in an external browser reached via intent, and in a WebView.
//
// Usage:
//
//	loadtime [-requests N] [-cpuprofile FILE] [-memprofile FILE]
//	         [-telemetry-addr ADDR] [-metrics-out FILE]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/pageload"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	requests := flag.Int("requests", 12, "resource requests on the measured page")
	var prof profiling.Flags
	prof.Register(nil)
	var telem telemetry.Flags
	telem.Register(nil)
	flag.Parse()
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	// loadtime has no seed flag; deterministic timings derive from a fixed
	// one.
	telem.Hub(1)
	if err := telem.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Figure7(pageload.Default(), *requests))
	if err := telem.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
}
