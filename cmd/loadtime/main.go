// Command loadtime prints the Figure 7 page-load-time comparison: the same
// page rendered in a Custom Tab (pre-warmed, speculatively loaded), in
// Chrome, in an external browser reached via intent, and in a WebView.
//
// With -serving it instead benchmarks the hardened measurement serving
// plane: for each simulated-user scale it boots a fresh ingest service on a
// loopback socket, replays closed-loop crawl-shaped beacon traffic through
// the retrying client, drains the plane, and reconciles client accounting
// against server accounting — exiting non-zero if a single beacon went
// missing. Results (p50/p99 latency, throughput, shed rate) are written to
// -bench-out as JSON.
//
// Usage:
//
//	loadtime [-requests N] [-cpuprofile FILE] [-memprofile FILE]
//	         [-telemetry-addr ADDR] [-metrics-out FILE]
//	loadtime -serving [-serving-users 4,16,64] [-serving-batches N]
//	         [-serving-beacons N] [-serving-queue N] [-serving-workers N]
//	         [-serving-rate R] [-serving-burst B] [-serving-maxconc N]
//	         [-serving-seed S] [-bench-out FILE]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/pageload"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/serving"
	"repro/internal/telemetry"
)

func main() {
	requests := flag.Int("requests", 12, "resource requests on the measured page")
	servingMode := flag.Bool("serving", false, "benchmark the serving plane instead of printing Figure 7")
	users := flag.String("serving-users", "4,16,64", "comma-separated simulated-user scales")
	batches := flag.Int("serving-batches", 50, "batches each simulated user posts")
	beaconsPer := flag.Int("serving-beacons", 5, "mean beacons per batch")
	queueDepth := flag.Int("serving-queue", 128, "ingest queue depth in batches")
	workers := flag.Int("serving-workers", 2, "queue-drain workers")
	rate := flag.Float64("serving-rate", 0, "per-tenant quota in beacons/second (0 = unlimited)")
	burst := flag.Float64("serving-burst", 0, "per-tenant burst in beacons (0 = derive)")
	maxConc := flag.Int("serving-maxconc", 64, "admission-control concurrency limit")
	seed := flag.Int64("serving-seed", 1, "load-shape and retry-jitter seed")
	benchOut := flag.String("bench-out", "BENCH_serving.json", "serving benchmark output file")
	var prof profiling.Flags
	prof.Register(nil)
	var telem telemetry.Flags
	telem.Register(nil)
	flag.Parse()
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	// loadtime has no seed flag; deterministic timings derive from a fixed
	// one.
	telem.Hub(1)
	if err := telem.Start(); err != nil {
		log.Fatal(err)
	}
	if *servingMode {
		if err := runServingBench(servingBenchConfig{
			Users:      *users,
			Batches:    *batches,
			Beacons:    *beaconsPer,
			QueueDepth: *queueDepth,
			Workers:    *workers,
			Rate:       *rate,
			Burst:      *burst,
			MaxConc:    *maxConc,
			Seed:       *seed,
			Out:        *benchOut,
		}); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(report.Figure7(pageload.Default(), *requests))
	}
	if err := telem.Finish(); err != nil {
		log.Fatal(err)
	}
	if err := prof.Stop(); err != nil {
		log.Fatal(err)
	}
}

type servingBenchConfig struct {
	Users      string
	Batches    int
	Beacons    int
	QueueDepth int
	Workers    int
	Rate       float64
	Burst      float64
	MaxConc    int
	Seed       int64
	Out        string
}

// servingBenchReport is the BENCH_serving.json document.
type servingBenchReport struct {
	QueueDepth int                   `json:"queue_depth"`
	Workers    int                   `json:"workers"`
	TenantRate float64               `json:"tenant_rate"`
	MaxConc    int                   `json:"max_concurrent"`
	Seed       int64                 `json:"seed"`
	Runs       []*serving.LoadResult `json:"runs"`
}

func parseScales(s string) ([]int, error) {
	var scales []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("loadtime: bad -serving-users entry %q", part)
		}
		scales = append(scales, n)
	}
	if len(scales) == 0 {
		return nil, fmt.Errorf("loadtime: -serving-users is empty")
	}
	return scales, nil
}

// runServingBench runs one closed-loop load generation per user scale
// against a fresh serving plane, reconciles the accounting, prints a
// summary table, and writes the JSON report.
func runServingBench(cfg servingBenchConfig) error {
	scales, err := parseScales(cfg.Users)
	if err != nil {
		return err
	}
	rep := servingBenchReport{
		QueueDepth: cfg.QueueDepth,
		Workers:    cfg.Workers,
		TenantRate: cfg.Rate,
		MaxConc:    cfg.MaxConc,
		Seed:       cfg.Seed,
	}
	fmt.Printf("%-6s %10s %10s %10s %12s %12s %14s %9s\n",
		"users", "sent", "accepted", "shed", "p50", "p99", "beacons/s", "shed%")
	for _, n := range scales {
		res, err := benchOneScale(cfg, n)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, res)
		fmt.Printf("%-6d %10d %10d %10d %12s %12s %14.0f %8.1f%%\n",
			res.Users, res.Sent, res.Accepted, res.Shed,
			res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond),
			res.Throughput, 100*res.ShedRate)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d scales, lossless accounting verified)\n", cfg.Out, len(rep.Runs))
	return nil
}

func benchOneScale(cfg servingBenchConfig, users int) (*serving.LoadResult, error) {
	agg := serving.NewAggregator()
	svc := serving.NewService(serving.Config{
		Sink:          agg,
		QueueDepth:    cfg.QueueDepth,
		Workers:       cfg.Workers,
		MaxConcurrent: cfg.MaxConc,
		TenantRate:    cfg.Rate,
		TenantBurst:   cfg.Burst,
	})
	ep, err := serving.Listen("127.0.0.1:0", svc.Handler())
	if err != nil {
		svc.Close()
		return nil, err
	}
	defer ep.Close()

	res, err := serving.RunLoad(context.Background(), serving.LoadConfig{
		URL:             "http://" + ep.Addr + "/collect",
		Users:           users,
		BatchesPerUser:  cfg.Batches,
		BeaconsPerBatch: cfg.Beacons,
		Seed:            cfg.Seed,
	})
	if err != nil {
		svc.Close()
		return nil, err
	}
	if err := svc.Drain(context.Background()); err != nil {
		return nil, err
	}
	if err := res.Reconcile(svc.Stats()); err != nil {
		return nil, fmt.Errorf("loadtime: %d users: %w", users, err)
	}
	if got := agg.Beacons(); got != res.BeaconsAccepted {
		return nil, fmt.Errorf("loadtime: %d users: aggregator holds %d beacons, client counted %d accepted",
			users, got, res.BeaconsAccepted)
	}
	return res, nil
}
