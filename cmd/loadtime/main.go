// Command loadtime prints the Figure 7 page-load-time comparison: the same
// page rendered in a Custom Tab (pre-warmed, speculatively loaded), in
// Chrome, in an external browser reached via intent, and in a WebView.
//
// Usage:
//
//	loadtime [-requests N]
package main

import (
	"flag"
	"fmt"

	"repro/internal/pageload"
	"repro/internal/report"
)

func main() {
	requests := flag.Int("requests", 12, "resource requests on the measured page")
	flag.Parse()
	fmt.Print(report.Figure7(pageload.Default(), *requests))
}
