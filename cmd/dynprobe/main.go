// Command dynprobe runs the paper's semi-manual dynamic analysis (§3.2)
// on a simulated device: it classifies the top-1K apps' hyperlink
// behaviour (Table 6), then instruments every WebView-based In-App Browser
// with Frida-style hooks and visits the controlled measurement page,
// reporting the injected behaviour (Table 8) and the Web APIs the injected
// code exercised (Table 9).
//
// Usage:
//
//	dynprobe [-scale N] [-seed N] [-top N] [-workers N] [-devices N]
//	         [-urls]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	         [-telemetry-addr ADDR] [-metrics-out FILE] [-trace-out FILE]
//	         [-telemetry-wallclock]
//
// -devices boots that many simulated handsets on one internet and pins
// app probes to them round-robin; -workers bounds how many probes run at
// once. Outcomes merge in app order, so the tables are identical to the
// sequential (1/1) defaults.
//
// -urls cross-validates the static URL extractor against the dynamic
// probes: each probed IAB's APK is re-analysed statically and the
// extracted endpoint hosts are compared against the hosts the app actually
// contacted during the controlled visit, printed as a per-app agreement
// table (precision = static hosts confirmed dynamically, recall = dynamic
// hosts explained statically) plus a per-SDK aggregation attributing each
// pattern to the SDK (or first-party code) that produced it. Both tables
// are byte-identical across -workers and -devices settings.
//
// Observability: -telemetry-addr serves /metrics, /metrics.json, /healthz,
// /trace and /debug/pprof during the probe run; -metrics-out writes the
// final snapshot on exit ("-" for stdout). The probes surface the
// simulated browser's script-engine families (program-cache traffic, step
// budget kills).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/jsvm"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	scale := flag.Int("scale", 100, "corpus population divisor (must keep >= top apps)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	top := flag.Int("top", 1000, "number of top apps to classify")
	workers := flag.Int("workers", 1, "max app probes in flight (1 = sequential)")
	devices := flag.Int("devices", 1, "simulated handsets to pin app probes to")
	urls := flag.Bool("urls", false, "cross-validate static URL extraction against the probes' network logs")
	engine := flag.String("jsvm-engine", "bytecode", "script engine: bytecode or ast (differential fallback)")
	var prof profiling.Flags
	prof.Register(nil)
	var telem telemetry.Flags
	telem.Register(nil)
	flag.Parse()
	eng, ok := jsvm.ParseEngine(*engine)
	if !ok {
		log.Fatalf("unknown -jsvm-engine %q (want bytecode or ast)", *engine)
	}
	jsvm.SetDefaultEngine(eng)
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	hub := telem.Hub(*seed)
	if err := telem.Start(); err != nil {
		log.Fatal(err)
	}
	err := run(os.Stdout, *scale, *seed, *top, *workers, *devices, *urls, hub)
	if terr := telem.Finish(); err == nil {
		err = terr
	}
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, scale int, seed int64, top, workers, devices int, urls bool, hub *telemetry.Hub) error {
	if hub != nil {
		jsvm.Instrument(hub)
	}
	fmt.Fprintf(os.Stderr, "generating corpus (seed=%d scale=1/%d)...\n", seed, scale)
	c, err := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}
	specs := c.Top(top)
	fmt.Fprintf(os.Stderr, "classifying %d top apps on %d device(s), %d worker(s)...\n",
		len(specs), devices, workers)

	study := core.NewDynamicStudyFleet(devices, workers)
	ctx := context.Background()
	t6, err := study.ClassifyTopApps(ctx, specs)
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Table6(t6))

	// Deep-probe the WebView IABs found.
	var iabSpecs []*corpus.Spec
	for _, pkg := range t6.WebViewIABApps {
		if spec := c.AppByPackage(pkg); spec != nil {
			iabSpecs = append(iabSpecs, spec)
		}
	}
	fmt.Fprintf(os.Stderr, "probing %d WebView-based IABs...\n", len(iabSpecs))
	rows, _, err := study.ProbeIABs(ctx, iabSpecs)
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Table8(rows))
	fmt.Fprint(out, report.Table9(rows))

	if urls {
		fmt.Fprintf(os.Stderr, "statically extracting endpoints from %d IAB APKs...\n", len(iabSpecs))
		static, err := core.StaticEndpoints(iabSpecs, nil)
		if err != nil {
			return err
		}
		agree := make([]report.AgreementRow, 0, len(rows))
		apps := make([]report.AppEndpoints, 0, len(rows))
		for _, r := range rows {
			agree = append(agree, report.Agreement(r.Package, static[r.Package], r.ExternalHosts))
			apps = append(apps, report.AppEndpoints{
				Package:      r.Package,
				Endpoints:    static[r.Package],
				DynamicHosts: r.ExternalHosts,
			})
		}
		fmt.Fprint(out, report.AgreementTable(agree))
		fmt.Fprint(out, report.SDKAgreementTable(report.SDKAgreement(apps)))
	}
	return nil
}
