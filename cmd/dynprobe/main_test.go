package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestOutputWorkerIndependent pins the determinism contract stated in the
// package doc: the full dynprobe output — Tables 6/8/9 plus the static↔
// dynamic agreement table — is byte-identical whether probes run
// sequentially on one device or concurrently across a device fleet.
func TestOutputWorkerIndependent(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run(&seq, 100, 1, 1000, 1, 1, true, nil); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run(&par, 100, 1, 1000, 4, 2, true, nil); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("output differs between workers=1/devices=1 and workers=4/devices=2:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq.String(), par.String())
	}
	out := seq.String()
	if !strings.Contains(out, "Static vs dynamic endpoint-host agreement") {
		t.Fatalf("agreement table missing from output:\n%s", out)
	}
	agreement := out[strings.Index(out, "Static vs dynamic"):]
	if !strings.Contains(agreement, "total") {
		t.Errorf("agreement table lacks a totals row:\n%s", agreement)
	}
	// At least one probed IAB must appear as a row above the totals line.
	if strings.Count(agreement, "\n") < 4 {
		t.Errorf("agreement table has no per-app rows:\n%s", agreement)
	}
	if !strings.Contains(out, "Static vs dynamic agreement by SDK attribution") {
		t.Fatalf("per-SDK agreement table missing from output:\n%s", out)
	}
	sdk := out[strings.Index(out, "by SDK attribution"):]
	if !strings.Contains(sdk, "total") {
		t.Errorf("per-SDK table lacks a totals row:\n%s", sdk)
	}
}
