// Command crawlsites reproduces the paper's 100-top-site crawl (§3.2.2,
// Figure 6): it boots a device whose internet serves synthetic CrUX top
// sites, installs the WebView-IAB apps plus the System WebView Shell
// baseline, starts an ADB server, and drives the crawl — launch, insert
// URL, tap, scroll, wait, collect NetLog, purge — printing the Figure 6
// endpoint distributions for LinkedIn and Kik.
//
// Usage:
//
//	crawlsites [-sites N] [-ratelimit N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/adb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/crux"
	"repro/internal/report"
)

func main() {
	sites := flag.Int("sites", 100, "number of top sites to crawl")
	rateLimit := flag.Int("ratelimit", 40, "clicks before an account restriction (0 = off)")
	flag.Parse()
	if err := run(*sites, *rateLimit); err != nil {
		log.Fatal(err)
	}
}

func run(nSites, rateLimit int) error {
	study := core.NewDynamicStudy()
	siteList := crux.TopSites(nSites)
	crux.RegisterAll(study.Net, siteList)

	// Install the ten IAB apps and the baseline shell.
	var apps []string
	ownDomains := map[string][]string{
		"com.linkedin.android": {"linkedin.com", "licdn.com"},
	}
	for i := range corpus.NamedApps {
		n := &corpus.NamedApps[i]
		if n.Dynamic.LinkOpens != corpus.LinkWebView {
			continue
		}
		spec := &corpus.Spec{Package: n.Package, Title: n.Title, Downloads: n.Downloads,
			OnPlayStore: true, Dynamic: n.Dynamic}
		if _, err := study.Device.Install(spec); err != nil {
			return err
		}
		apps = append(apps, n.Package)
	}
	baseline := core.BaselineShellSpec()
	if _, err := study.Device.Install(baseline); err != nil {
		return err
	}
	apps = append(apps, baseline.Package)

	srv := adb.NewServer(study.Device)
	if rateLimit > 0 {
		// The paper's Facebook account restrictions.
		srv.RateLimits = map[string]int{"com.facebook.katana": rateLimit}
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	client, err := adb.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	fmt.Fprintf(os.Stderr, "crawling %d sites with %d apps over adb %s...\n", nSites, len(apps), addr)
	cr := crawler.New(client, crawler.Config{Apps: apps, Sites: siteList, OwnDomains: ownDomains})
	res, err := cr.Run()
	if err != nil {
		return err
	}
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "failure: %s\n", f)
	}
	for app, n := range res.AccountResets {
		fmt.Fprintf(os.Stderr, "account resets for %s: %d\n", app, n)
	}

	fmt.Print(report.Figure6(res, "com.linkedin.android", "LinkedIn"))
	fmt.Print(report.Figure6(res, "kik.android", "Kik"))
	fmt.Print(report.Figure6(res, baseline.Package, "System WebView Shell (baseline)"))
	return nil
}
