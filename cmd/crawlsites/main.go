// Command crawlsites reproduces the paper's 100-top-site crawl (§3.2.2,
// Figure 6): it boots a fleet of devices whose shared internet serves
// synthetic CrUX top sites, installs the WebView-IAB apps plus the System
// WebView Shell baseline on every device, starts one ADB server per
// device, and drives the crawl — launch, insert URL, tap, scroll, wait,
// collect NetLog, purge — printing the Figure 6 endpoint distributions for
// LinkedIn and Kik.
//
// Usage:
//
//	crawlsites [-sites N] [-ratelimit N] [-workers N] [-devices N]
//	           [-cpuprofile FILE] [-memprofile FILE]
//	           [-telemetry-addr ADDR] [-metrics-out FILE] [-trace-out FILE]
//	           [-telemetry-wallclock]
//
// The crawl schedules one ordered lane per app; -workers bounds how many
// visits are in flight at once across lanes and -devices splits the lanes
// over that many simulated handsets. The defaults (1/1) reproduce the
// paper's strictly sequential single-device crawl; any parallel setting
// produces byte-identical report tables, just faster.
//
// Observability: -telemetry-addr serves /metrics, /metrics.json, /healthz,
// /trace and /debug/pprof during the crawl; -metrics-out and -trace-out
// write the final snapshot and one trace per visit on exit ("-" for
// stdout). Visit totals are schedule-independent, so sequential and
// parallel crawls over the same -devices value emit identical snapshots.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/adb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/crux"
	"repro/internal/device"
	"repro/internal/internet"
	"repro/internal/jsvm"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	sites := flag.Int("sites", 100, "number of top sites to crawl")
	rateLimit := flag.Int("ratelimit", 40, "clicks before an account restriction (0 = off)")
	workers := flag.Int("workers", 1, "max visits in flight across app lanes (1 = sequential)")
	devices := flag.Int("devices", 1, "simulated handsets to split app lanes over")
	engine := flag.String("jsvm-engine", "bytecode", "script engine: bytecode or ast (differential fallback)")
	var prof profiling.Flags
	prof.Register(nil)
	var telem telemetry.Flags
	telem.Register(nil)
	flag.Parse()
	eng, ok := jsvm.ParseEngine(*engine)
	if !ok {
		log.Fatalf("unknown -jsvm-engine %q (want bytecode or ast)", *engine)
	}
	jsvm.SetDefaultEngine(eng)
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	// The crawl has no corpus seed; deterministic timings derive from a
	// fixed one.
	hub := telem.Hub(1)
	if err := telem.Start(); err != nil {
		log.Fatal(err)
	}
	err := run(*sites, *rateLimit, *workers, *devices, hub)
	if terr := telem.Finish(); err == nil {
		err = terr
	}
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		log.Fatal(err)
	}
}

func run(nSites, rateLimit, workers, devices int, hub *telemetry.Hub) error {
	if hub != nil {
		jsvm.Instrument(hub)
	}
	net := internet.New()
	siteList := crux.TopSites(nSites)
	crux.RegisterAll(net, siteList)
	fleet := device.NewFleet(net, devices)

	// Install the ten IAB apps and the baseline shell on every device.
	var apps []string
	ownDomains := map[string][]string{
		"com.linkedin.android": {"linkedin.com", "licdn.com"},
	}
	for i := range corpus.NamedApps {
		n := &corpus.NamedApps[i]
		if n.Dynamic.LinkOpens != corpus.LinkWebView {
			continue
		}
		spec := &corpus.Spec{Package: n.Package, Title: n.Title, Downloads: n.Downloads,
			OnPlayStore: true, Dynamic: n.Dynamic}
		if err := fleet.Install(spec); err != nil {
			return err
		}
		apps = append(apps, n.Package)
	}
	baseline := core.BaselineShellSpec()
	if err := fleet.Install(baseline); err != nil {
		return err
	}
	apps = append(apps, baseline.Package)

	farmCfg := adb.FarmConfig{Telemetry: hub}
	if rateLimit > 0 {
		// The paper's Facebook account restrictions.
		farmCfg.RateLimits = map[string]int{"com.facebook.katana": rateLimit}
	}
	farm, err := adb.StartFarm(fleet.Devices, farmCfg)
	if err != nil {
		return err
	}
	defer farm.Close()

	// One dedicated connection per app lane: lanes sharing a device can
	// overlap their visits instead of serializing on one client.
	clients, err := farm.LaneClients(len(apps))
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "crawling %d sites with %d apps over %d device(s), %d worker(s)...\n",
		nSites, len(apps), farm.Size(), workers)
	cr := crawler.NewFleet(clients, crawler.Config{
		Apps: apps, Sites: siteList, OwnDomains: ownDomains, Workers: workers,
		Telemetry: hub,
	})
	res, err := cr.Run()
	if err != nil {
		return err
	}
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "failure: %s\n", f)
	}
	for app, n := range res.AccountResets {
		fmt.Fprintf(os.Stderr, "account resets for %s: %d\n", app, n)
	}

	fmt.Print(report.Figure6(res, "com.linkedin.android", "LinkedIn"))
	fmt.Print(report.Figure6(res, "kik.android", "Kik"))
	fmt.Print(report.Figure6(res, baseline.Package, "System WebView Shell (baseline)"))
	return nil
}
